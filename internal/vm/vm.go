// Package vm simulates the QEMU/KVM layer Wayfinder boots OS images on,
// plus the virtual clock that makes time-budget experiments tractable: all
// evaluation costs (builds, boots, benchmark runs) are charged to a Clock
// in virtual seconds, so a "3-hour" search session (Figs 9–11) executes in
// milliseconds while preserving budget semantics.
//
// The VM exposes the runtime pseudo-filesystems (/proc/sys, /sys) of the
// booted kernel, which is what the §3.4 probing heuristic walks to derive
// the runtime configuration space without documentation: list writable
// files, read defaults, infer types, and scale values by powers of ten to
// find accepted ranges.
package vm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"wayfinder/internal/configspace"
	"wayfinder/internal/simos"
)

// Clock is a virtual clock measured in seconds.
type Clock struct {
	now float64
}

// NewClockAt returns a clock whose current time is the given number of
// virtual seconds — used to start per-worker clocks at a shared baseline.
func NewClockAt(seconds float64) *Clock { return &Clock{now: seconds} }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward; negative advances are ignored.
func (c *Clock) Advance(seconds float64) {
	if seconds > 0 {
		c.now += seconds
	}
}

// Rewind moves the clock backwards to the given time (a no-op when the
// clock is at or before it). It exists for the fault runtime: a killed
// evaluation's remaining virtual work was never delivered, so the engine
// refunds it by rewinding the evaluator's clock to the kill point.
func (c *Clock) Rewind(to float64) {
	if to < c.now {
		c.now = to
	}
}

// WallClock merges the per-worker virtual clocks of a parallel evaluation
// session into a shared wall-clock notion: workers evaluate configurations
// concurrently, so the session's virtual wall time is the maximum over the
// worker clocks, while the aggregate compute time — what a cloud bill or
// the paper's CPU-hour accounting would charge — is the sum of per-worker
// advances past the common baseline.
//
// Each worker owns its clock exclusively, so worker goroutines advance
// their clocks without synchronization; Now and ComputeSec are meant to be
// read from the coordinator between rounds (or after the workers join).
type WallClock struct {
	base   float64
	clocks []*Clock
	// stalls is the per-worker idle time the scheduler injected via Stall
	// (barrier waits, staleness-bound waits) — clock advances that must
	// count as idle, not compute.
	stalls []float64
}

// NewWallClock returns a wall clock over n worker clocks, all starting at
// the baseline virtual time.
func NewWallClock(n int, base float64) *WallClock {
	w := &WallClock{base: base, clocks: make([]*Clock, n), stalls: make([]float64, n)}
	for i := range w.clocks {
		w.clocks[i] = NewClockAt(base)
	}
	return w
}

// Stall advances worker i's clock to the given virtual time (a no-op if
// the clock is already past it), accounting the gap as scheduler-imposed
// idle time rather than compute. Schedulers call it when a worker must
// wait — at a round barrier, or for the observation that admits its next
// dispatch — so evaluation start times stay causally consistent and the
// wait is charged to the wall-clock.
func (w *WallClock) Stall(i int, until float64) {
	gap := until - w.clocks[i].now
	if gap <= 0 {
		return
	}
	w.clocks[i].Advance(gap)
	w.stalls[i] += gap
}

// WorkerStallSec returns worker i's scheduler-imposed stall total — the
// component of its idle time that is already settled (unlike the drain gap,
// which depends on the final wall time). Used for checkpointing.
func (w *WallClock) WorkerStallSec(i int) float64 { return w.stalls[i] }

// RestoreWorker forces worker i's clock and stall total to checkpointed
// values, re-establishing a serialized session's exact time state. The
// clock must not move backwards past the wall-clock baseline.
func (w *WallClock) RestoreWorker(i int, nowSec, stallSec float64) {
	w.clocks[i].now = nowSec
	w.stalls[i] = stallSec
}

// Workers returns the number of worker clocks.
func (w *WallClock) Workers() int { return len(w.clocks) }

// Worker returns worker i's private clock.
func (w *WallClock) Worker(i int) *Clock { return w.clocks[i] }

// Now returns the virtual wall time: the maximum over worker clocks (the
// baseline when there are no workers).
func (w *WallClock) Now() float64 {
	now := w.base
	for _, c := range w.clocks {
		if c.now > now {
			now = c.now
		}
	}
	return now
}

// ComputeSec returns the aggregate compute time: the sum over workers of
// the virtual time each advanced past the baseline, excluding
// scheduler-imposed stalls.
func (w *WallClock) ComputeSec() float64 {
	total := 0.0
	for i, c := range w.clocks {
		total += c.now - w.base - w.stalls[i]
	}
	return total
}

// WorkerIdleSec returns worker i's idle time: its scheduler-imposed
// stalls plus the gap between the session wall clock and the worker's own
// clock (the end-of-session drain).
func (w *WallClock) WorkerIdleSec(i int) float64 {
	return w.stalls[i] + w.Now() - w.clocks[i].now
}

// IdleSec returns the aggregate idle time summed over workers — the
// wall-clock wasted waiting (round barriers behind a straggler,
// staleness-bound waits, tail drain) rather than spent evaluating.
// Utilization of a session is ComputeSec / (ComputeSec + IdleSec).
func (w *WallClock) IdleSec() float64 {
	now := w.Now()
	total := 0.0
	for i, c := range w.clocks {
		total += w.stalls[i] + now - c.now
	}
	return total
}

// VM is one booted (simulated) virtual machine.
type VM struct {
	model  *simos.Model
	config *configspace.Config
	booted bool

	// sysctl state: current values by name.
	values map[string]int64
	specs  map[string]simos.RuntimeSpec
}

// New creates a VM for a model/configuration pair; call Boot before using
// the pseudo-filesystem.
func New(model *simos.Model, config *configspace.Config) *VM {
	v := &VM{
		model:  model,
		config: config,
		values: map[string]int64{},
		specs:  map[string]simos.RuntimeSpec{},
	}
	for _, s := range model.RuntimeSpecs {
		v.specs[s.Name] = s
	}
	return v
}

// Boot starts the VM. It fails when the configuration's hidden crash
// outcome is a build or boot failure.
func (v *VM) Boot() error {
	stage, reason := v.model.CrashOutcome(v.config)
	if stage == simos.StageBuild || stage == simos.StageBoot {
		return fmt.Errorf("vm: %s failure: %s", stage, reason)
	}
	// Runtime pseudo-files start at the kernel defaults, then the
	// configuration's runtime assignments are applied as Wayfinder's test
	// task would (sysctl -w for each parameter).
	for _, s := range v.model.RuntimeSpecs {
		v.values[s.Name] = s.Default
	}
	for i, p := range v.config.Space().Params() {
		if p.Class != configspace.Runtime {
			continue
		}
		if _, ok := v.specs[p.Name]; ok {
			v.values[p.Name] = v.config.Value(i).I
		}
	}
	v.booted = true
	return nil
}

// Booted reports whether Boot succeeded.
func (v *VM) Booted() bool { return v.booted }

// ListWritable returns the writable pseudo-file paths under /proc/sys and
// /sys, sorted — step one of the probing heuristic.
func (v *VM) ListWritable() []string {
	var out []string
	for _, s := range v.model.RuntimeSpecs {
		if s.Writable {
			out = append(out, s.Path)
		}
	}
	sort.Strings(out)
	return out
}

// ReadFile reads a pseudo-file's current value.
func (v *VM) ReadFile(path string) (string, error) {
	if !v.booted {
		return "", fmt.Errorf("vm: not booted")
	}
	name, err := v.nameForPath(path)
	if err != nil {
		return "", err
	}
	return strconv.FormatInt(v.values[name], 10), nil
}

// WriteFile writes a pseudo-file, enforcing the kernel's hidden accepted
// range: out-of-range writes fail with EINVAL, as real sysctls do.
func (v *VM) WriteFile(path, value string) error {
	if !v.booted {
		return fmt.Errorf("vm: not booted")
	}
	name, err := v.nameForPath(path)
	if err != nil {
		return err
	}
	spec := v.specs[name]
	iv, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64)
	if err != nil {
		return fmt.Errorf("vm: %s: invalid value %q", path, value)
	}
	if iv < spec.HardMin || iv > spec.HardMax {
		return fmt.Errorf("vm: %s: EINVAL (value %d outside accepted range)", path, iv)
	}
	v.values[name] = iv
	return nil
}

func (v *VM) nameForPath(path string) (string, error) {
	for _, s := range v.model.RuntimeSpecs {
		if s.Path == path {
			return s.Name, nil
		}
	}
	return "", fmt.Errorf("vm: no such pseudo-file %q", path)
}

// ProbeOptions tunes the §3.4 space-derivation heuristic.
type ProbeOptions struct {
	// ScaleFactor is the multiplicative probe step ("scaling up and down
	// the default value several times by a high factor (10)").
	ScaleFactor int64
	// MaxSteps bounds how many scalings are attempted in each direction.
	MaxSteps int
	// SecondsPerWrite is the virtual cost charged per probe write.
	SecondsPerWrite float64
}

// DefaultProbeOptions matches the paper's description.
func DefaultProbeOptions() ProbeOptions {
	return ProbeOptions{ScaleFactor: 10, MaxSteps: 6, SecondsPerWrite: 0.05}
}

// ProbeSpace implements the heuristic of §3.4 against a booted VM: for
// every writable pseudo-file, read the default; treat 0/1 defaults as
// boolean and other numbers as arbitrary integers; then scale the default
// up and down by the factor, writing each candidate — values the write
// accepts (without crashing the VM) are considered in range. The result is
// a runtime-parameter Space (an approximation of the kernel's true limits,
// intentionally coarse: refining values is the search's job).
func (v *VM) ProbeSpace(name string, opts ProbeOptions, clock *Clock) (*configspace.Space, error) {
	if !v.booted {
		return nil, fmt.Errorf("vm: not booted")
	}
	space := configspace.NewSpace(name)
	for _, path := range v.ListWritable() {
		raw, err := v.ReadFile(path)
		if err != nil {
			return nil, err
		}
		def, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			continue // non-numeric runtime parameters are skipped (§3.4)
		}
		pname, _ := v.nameForPath(path)
		if def == 0 || def == 1 {
			space.MustAdd(&configspace.Param{
				Name: pname, Type: configspace.Bool, Class: configspace.Runtime,
				Default: configspace.BoolValue(def == 1),
			})
			continue
		}
		lo, hi := def, def
		// Scale up. The multiply is overflow-checked: runtime defaults can
		// sit near the top of the int64 range, where another ×ScaleFactor
		// step would wrap negative and corrupt the derived Min/Max range.
		val := def
		for step := 0; step < opts.MaxSteps; step++ {
			next, ok := mulInt64(val, opts.ScaleFactor)
			if !ok {
				break
			}
			val = next
			clock.Advance(opts.SecondsPerWrite)
			if err := v.WriteFile(path, strconv.FormatInt(val, 10)); err != nil {
				break
			}
			// Scaling a negative default "up" moves away from zero downward,
			// so accepted values extend whichever bound they actually pass.
			if val > hi {
				hi = val
			}
			if val < lo {
				lo = val
			}
		}
		// Scale down.
		val = def
		for step := 0; step < opts.MaxSteps; step++ {
			val /= opts.ScaleFactor
			if val == 0 {
				break
			}
			clock.Advance(opts.SecondsPerWrite)
			if err := v.WriteFile(path, strconv.FormatInt(val, 10)); err != nil {
				break
			}
			if val < lo {
				lo = val
			}
			if val > hi {
				hi = val
			}
		}
		// Restore the default.
		clock.Advance(opts.SecondsPerWrite)
		if err := v.WriteFile(path, raw); err != nil {
			return nil, fmt.Errorf("vm: restoring %s: %w", path, err)
		}
		space.MustAdd(&configspace.Param{
			Name: pname, Type: configspace.Int, Class: configspace.Runtime,
			Min: lo, Max: hi, Default: configspace.IntValue(def),
		})
	}
	return space, nil
}

// mulInt64 multiplies two int64s, reporting false on overflow instead of
// silently wrapping.
func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		// |MinInt64| is not representable; any multiply by a magnitude > 1
		// overflows, and ×±1 is handled below without division tricks.
		if b == 1 {
			return a, true
		}
		if a == 1 {
			return b, true
		}
		return 0, false
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}
