// Journaling and recovery: every job's durable record lives under
// StateDir/jobs/<id>/ as small JSON files written atomically (temp file +
// rename, so a crash never leaves a half-written record):
//
//	spec.json    the JobSpec, written at admission — enough to rebuild
//	             the session from scratch deterministically
//	snap.json    the latest session snapshot, rewritten every
//	             JournalEvery observations and on graceful shutdown
//	report.json  the canonical final report, written once at completion
//	status.json  a terminal marker for canceled/failed jobs
//
// Recovery scans the directory at startup: jobs with a report or status
// file are re-registered terminal; everything else is in-flight and is
// resumed from its snapshot (or rebuilt from its spec when no usable
// snapshot exists — same final bytes, wasted work) and queued.
package wfd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// writeFileAtomic writes data so that path either keeps its old content or
// holds all of data — never a torn prefix.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// jobDir is a job's journal directory.
func (d *Daemon) jobDir(id string) string {
	return filepath.Join(d.cfg.StateDir, "jobs", id)
}

// writeSpec records a job's spec at admission.
func (d *Daemon) writeSpec(j *job) error {
	dir := d.jobDir(j.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(j.spec, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, "spec.json"), data)
}

// writeReport records a job's canonical final report and retires its
// snapshot.
func (d *Daemon) writeReport(j *job, report []byte) error {
	dir := d.jobDir(j.id)
	if err := writeFileAtomic(filepath.Join(dir, "report.json"), report); err != nil {
		return err
	}
	os.Remove(filepath.Join(dir, "snap.json"))
	return nil
}

// terminalStatus is the durable record of a canceled or failed job.
type terminalStatus struct {
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Observed int    `json:"observed"`
}

// writeStatus records a non-done terminal state and retires the snapshot.
func (d *Daemon) writeStatus(j *job, state, reason string, observed int) error {
	dir := d.jobDir(j.id)
	data, err := json.Marshal(terminalStatus{State: state, Error: reason, Observed: observed})
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, "status.json"), data); err != nil {
		return err
	}
	os.Remove(filepath.Join(dir, "snap.json"))
	return nil
}

// journalJob snapshots an in-flight job. Only the stepper holding the job
// in stateRunning (or shutdown, after the pool drained) may call it — a
// session must not be snapshotted while stepping. A snapshot failure
// demotes the job to non-journalable (it will restart from scratch after a
// crash) rather than killing it.
func (d *Daemon) journalJob(j *job) {
	d.mu.Lock()
	journalable := j.journalable
	d.mu.Unlock()
	if !journalable || d.cfg.StateDir == "" || j.sess == nil {
		return
	}
	snap, err := j.sess.Snapshot()
	if err != nil {
		d.mu.Lock()
		j.journalable = false
		d.mu.Unlock()
		d.cfg.Logf("wfd: %s: snapshot failed, job will not survive a crash: %v", j.id, err)
		return
	}
	if err := writeFileAtomic(filepath.Join(d.jobDir(j.id), "snap.json"), snap); err != nil {
		d.cfg.Logf("wfd: %s: journal snapshot: %v", j.id, err)
	}
}

// recoveredSummary pulls the summary fields a terminal job's status needs
// out of its journaled report.
type recoveredSummary struct {
	History []struct {
		Crashed bool `json:"crashed"`
	} `json:"history"`
	Best *struct {
		Metric float64 `json:"metric"`
		Config string  `json:"config"`
	} `json:"best"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

// recover rebuilds the daemon's job table from the state directory. Called
// from New before the stepper pool starts, so no locking is needed.
func (d *Daemon) recover() error {
	jobsDir := filepath.Join(d.cfg.StateDir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return fmt.Errorf("wfd: state dir: %w", err)
	}
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return fmt.Errorf("wfd: state dir: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "j") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	for _, id := range names {
		dir := filepath.Join(jobsDir, id)
		seq, err := strconv.Atoi(strings.TrimLeft(id, "j0"))
		if err != nil && id != "j000000" {
			d.cfg.Logf("wfd: recover: skipping %s: unparseable id", id)
			continue
		}
		specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			d.cfg.Logf("wfd: recover: skipping %s: %v", id, err)
			continue
		}
		var spec JobSpec
		if err := json.Unmarshal(specData, &spec); err != nil {
			d.cfg.Logf("wfd: recover: skipping %s: bad spec: %v", id, err)
			continue
		}
		spec = spec.withDefaults()
		t := d.tenantLocked(spec.Tenant)
		j := &job{
			id:          id,
			seq:         seq,
			spec:        spec,
			tenant:      t,
			hub:         newHub(d.cfg.EventLogCap),
			done:        make(chan struct{}),
			journalable: spec.Searcher != "unicorn",
		}

		switch {
		case d.recoverDone(dir, j):
			// terminal: report or status file consumed.
		default:
			d.recoverInFlight(dir, j)
		}

		d.insertLocked(j)
		d.recovered++
		if seq >= d.nextSeq {
			d.nextSeq = seq + 1
		}
	}
	if d.recovered > 0 {
		d.cfg.Logf("wfd: recovered %d jobs from %s (%d resumed from snapshots)",
			d.recovered, d.cfg.StateDir, d.resumed)
	}
	return nil
}

// recoverDone re-registers a job whose journal shows a terminal state,
// reporting whether it did.
func (d *Daemon) recoverDone(dir string, j *job) bool {
	if report, err := os.ReadFile(filepath.Join(dir, "report.json")); err == nil {
		j.state = stateDone
		j.reportJSON = report
		var sum recoveredSummary
		if json.Unmarshal(report, &sum) == nil {
			j.observed = len(sum.History)
			for _, h := range sum.History {
				if h.Crashed {
					j.crashes++
				}
			}
			j.elapsedSec = sum.ElapsedSec
			if sum.Best != nil {
				j.bestMetric = sum.Best.Metric
				j.bestConfig = sum.Best.Config
			}
		}
	} else if data, err := os.ReadFile(filepath.Join(dir, "status.json")); err == nil {
		var st terminalStatus
		if json.Unmarshal(data, &st) != nil {
			return false
		}
		j.err = st.Error
		j.observed = st.Observed
		if st.State == "failed" {
			j.state = stateFailed
		} else {
			j.state = stateCanceled
		}
	} else {
		return false
	}
	j.tenant.servedTerminal += j.observed
	j.tenant.service += j.observed
	j.hub.close()
	close(j.done)
	return true
}

// recoverInFlight reconstructs an in-flight job's session — from its
// latest snapshot when one is usable, from scratch otherwise — and queues
// it.
func (d *Daemon) recoverInFlight(dir string, j *job) {
	observer := d.observer(j)
	if snap, err := os.ReadFile(filepath.Join(dir, "snap.json")); err == nil {
		sess, err := j.spec.resumeSession(snap, observer, d.jobCorpus(j.spec))
		if err == nil {
			j.sess = sess
			d.resumed++
			d.cfg.Logf("wfd: %s resumed from snapshot at %d observations", j.id, sess.Observed())
		} else {
			d.cfg.Logf("wfd: %s: snapshot unusable (%v), restarting from scratch", j.id, err)
		}
	}
	if j.sess == nil {
		sess, err := j.spec.buildSession(observer, d.jobCorpus(j.spec))
		if err != nil {
			j.state = stateFailed
			j.err = fmt.Sprintf("recovery: %v", err)
			j.tenant.service += j.observed
			j.tenant.servedTerminal += j.observed
			j.hub.close()
			close(j.done)
			d.cfg.Logf("wfd: %s: recovery failed: %v", j.id, err)
			return
		}
		j.sess = sess
		d.cfg.Logf("wfd: %s restarting from scratch", j.id)
	}
	j.usage = j.sess.Usage()
	j.observed = j.sess.Observed()
	j.state = stateQueued
	j.tenant.active++
	j.tenant.committed += j.spec.Iterations
	j.tenant.service += j.observed
}
