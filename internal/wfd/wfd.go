// Package wfd implements the Wayfinder daemon: a long-lived, multi-tenant
// service that multiplexes many concurrent tuning sessions over one warm
// process — the serve-many-users end state the Session primitive
// (Step-quantum interleaving, typed events, Snapshot/Resume) was built
// for.
//
// # Architecture
//
// A Daemon owns a set of jobs, each wrapping one wayfinder.Session built
// from a declarative JobSpec. A pool of stepper goroutines advances jobs
// in Step(Quantum) slices under a fair-share discipline: every quantum
// goes to a queued job of the tenant with the least observations served
// so far, so tenants make even progress regardless of how many jobs each
// submitted. Admission control bounds the damage any tenant can do: a cap
// on active jobs per tenant and daemon-wide, plus an optional per-tenant
// total-observation budget that submissions are charged against up front
// (which is why daemon jobs must carry a bounded iteration budget).
//
// Typed session events fan out to attached clients through a per-job hub:
// the full event log is retained (up to Config.EventLogCap) so a client
// can attach mid-flight, replay from any sequence number, and follow live.
//
// # Crash-restart guarantee
//
// With a StateDir configured, the daemon journals every job: its spec at
// admission, a session snapshot every JournalEvery observations, and the
// final report on completion — each written atomically (temp file +
// rename). After kill -9, a restarted daemon resumes every in-flight job
// from its latest snapshot and completes it byte-identically to an
// uninterrupted run: sessions are pure functions of their spec, so the
// canonical final report (CanonicalReportJSON, which zeroes the wall-time
// decision-cost fields) is invariant under crashes, restarts, scheduling
// interleavings, and quantum sizes. A job whose searcher cannot
// checkpoint (unicorn) or whose snapshot is unreadable restarts from
// scratch — wasted work, same bytes. `make smoke-wfd` pins the guarantee
// in CI with a real SIGKILL.
//
// # Cross-session build index
//
// Sessions remain hermetic — each owns its artifact store, keeping its
// report a pure function of its spec (the crash-restart guarantee demands
// it). The daemon layers a fleet-wide content-addressed build index on
// top: every image actually compiled by any session is recorded under its
// configspace.Config.CompileKey digest, and repeat builds of an image any
// session already produced are counted as cross-session duplicates — the
// compute a shared physical artifact store would save a production fleet,
// reported in Status and the serve experiment without perturbing any
// session's virtual accounting.
package wfd

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"wayfinder/internal/artifact"
	"wayfinder/internal/corpus"
)

// Sentinel errors, wrapped with detail; the HTTP layer maps them to
// status codes.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("wfd: no such job")
	// ErrQuota reports an admission-control rejection.
	ErrQuota = errors.New("wfd: quota exceeded")
	// ErrBadSpec reports an invalid job specification.
	ErrBadSpec = errors.New("wfd: invalid job spec")
	// ErrClosed reports a daemon that is shutting down.
	ErrClosed = errors.New("wfd: daemon is shutting down")
	// ErrNotDone reports a report request for an uncompleted job.
	ErrNotDone = errors.New("wfd: job has not completed")
)

// Config parameterizes a Daemon.
type Config struct {
	// StateDir is the journal directory. Empty disables persistence: the
	// daemon runs in-memory only, with no crash-restart guarantee (used by
	// the serve experiment and tests).
	StateDir string
	// CorpusDir is the shared transfer-corpus directory. Empty disables
	// the corpus: jobs asking for it are rejected at admission. When set,
	// one corpus store is shared by every tenant's corpus-opted jobs —
	// completed sessions deposit their outcomes and warm-started sessions
	// draw seeds from their nearest neighbors, so the daemon accumulates
	// tuning memory across jobs, tenants, and restarts.
	CorpusDir string
	// Quantum is the number of observations one scheduling slice advances
	// a job by (default 8). Smaller quanta interleave tenants more finely
	// at more scheduling overhead; the final reports are invariant either
	// way.
	Quantum int
	// JournalEvery journals an active job every this many observations
	// (default 64). Smaller values tighten the crash-replay window at more
	// snapshot I/O.
	JournalEvery int
	// Steppers is the size of the stepping goroutine pool (default
	// GOMAXPROCS): how many sessions advance truly concurrently.
	Steppers int
	// MaxActiveJobs caps active (queued+running) jobs daemon-wide
	// (default 4096).
	MaxActiveJobs int
	// TenantMaxActive caps active jobs per tenant (default 1024).
	TenantMaxActive int
	// TenantBudget caps the total observations a tenant may consume
	// across all its jobs, charged at admission (0 = unlimited).
	TenantBudget int
	// EventLogCap bounds the per-job wire-event log retained for attach
	// replay (default 65536; older events are trimmed).
	EventLogCap int
	// Logf receives operational log lines (nil = discard).
	Logf func(format string, args ...any)
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Quantum <= 0 {
		c.Quantum = 8
	}
	if c.JournalEvery <= 0 {
		c.JournalEvery = 64
	}
	if c.Steppers <= 0 {
		c.Steppers = runtime.GOMAXPROCS(0)
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 4096
	}
	if c.TenantMaxActive <= 0 {
		c.TenantMaxActive = 1024
	}
	if c.EventLogCap <= 0 {
		c.EventLogCap = 65536
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// tenant is one tenant's scheduling and accounting state.
type tenant struct {
	name string
	// active is the tenant's queued+running job count.
	active int
	// committed is the observation budget reserved by active jobs (their
	// full iteration budgets, released when they reach a terminal state).
	committed int
	// servedTerminal is the observations consumed by terminal jobs —
	// together with committed, what TenantBudget admissions check.
	servedTerminal int
	// service is the fair-share key: observations served across the
	// daemon's lifetime (recovered jobs seed it with their journal
	// position).
	service int
	// computeSec is the aggregate virtual compute the tenant consumed.
	computeSec float64
}

// Daemon is the multi-tenant session-serving daemon.
type Daemon struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond // signaled when a job becomes runnable
	jobs    map[string]*job
	order   []string // job IDs in admission order (ascending seq)
	tenants map[string]*tenant
	nextSeq int
	closed  bool
	held    bool // dispatch paused by Hold; steppers wait for Release

	servedTotal int   // observations served across all jobs
	quanta      int64 // scheduling slices executed
	recovered   int   // jobs recovered from the state dir at startup
	resumed     int   // … of which resumed from a journal snapshot

	// storeMu guards the cross-session build index (artifact.Store is
	// deliberately lock-free; the daemon serializes access).
	storeMu   sync.Mutex
	store     *artifact.Store
	dupBuilds int // builds of an image some session already built

	// corpus is the shared transfer corpus (nil without Config.CorpusDir).
	// corpus.Store locks internally, so steppers deposit concurrently
	// without daemon-level serialization.
	corpus *corpus.Store

	wg        sync.WaitGroup
	startedAt time.Time

	// testQuantum, when set (by white-box tests, before any Submit),
	// observes every scheduling quantum: (job ID, tenant, observations
	// served). Guarded by mu; invoked outside it.
	testQuantum func(jobID, tenant string, served int)
}

// New assembles a daemon: recovers any jobs journaled in cfg.StateDir
// (resuming in-flight ones from their latest snapshots) and starts the
// stepper pool.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	d := &Daemon{
		cfg:       cfg,
		jobs:      map[string]*job{},
		tenants:   map[string]*tenant{},
		nextSeq:   1,
		store:     artifact.NewStore(1, 0),
		startedAt: time.Now(),
	}
	d.cond = sync.NewCond(&d.mu)
	if cfg.CorpusDir != "" {
		// Opened before recovery: resumed corpus-opted jobs reattach for
		// deposit, so memory keeps accumulating across daemon restarts.
		st, err := corpus.Open(cfg.CorpusDir)
		if err != nil {
			return nil, fmt.Errorf("wfd: corpus: %w", err)
		}
		d.corpus = st
	}
	if cfg.StateDir != "" {
		if err := d.recover(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Steppers; i++ {
		d.wg.Add(1)
		go d.stepper()
	}
	return d, nil
}

// tenantLocked returns (creating if needed) a tenant's state; call with
// d.mu held.
func (d *Daemon) tenantLocked(name string) *tenant {
	t := d.tenants[name]
	if t == nil {
		t = &tenant{name: name}
		d.tenants[name] = t
	}
	return t
}

// jobCorpus resolves the corpus store a job's session should see: the
// daemon's shared store for corpus-opted specs, nil otherwise.
func (d *Daemon) jobCorpus(sp JobSpec) *corpus.Store {
	if !sp.Corpus {
		return nil
	}
	return d.corpus
}

// Shutdown stops the daemon gracefully: steppers drain at their current
// quantum boundary, then every active job is journaled so a future daemon
// resumes it exactly where it stopped. Safe to call once.
func (d *Daemon) Shutdown() {
	d.Kill()
	if d.cfg.StateDir == "" {
		return
	}
	d.mu.Lock()
	var active []*job
	for _, id := range d.order {
		if j := d.jobs[id]; j.state == stateQueued || j.state == stateRunning {
			active = append(active, j)
		}
	}
	d.mu.Unlock()
	for _, j := range active {
		d.journalJob(j)
	}
}

// Hold pauses dispatch: steppers stop claiming queued jobs until Release.
// A job already inside a Step finishes its quantum and requeues; admission,
// status, attach, and cancellation all proceed while held. Holding lets a
// caller admit a whole batch atomically with respect to scheduling — an
// operator draining a box before maintenance, or a load study that wants
// the full job set resident before the first quantum is served.
func (d *Daemon) Hold() {
	d.mu.Lock()
	d.held = true
	d.mu.Unlock()
}

// Release resumes dispatch after Hold. Releasing an unheld daemon is a
// no-op.
func (d *Daemon) Release() {
	d.mu.Lock()
	d.held = false
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Kill stops the stepper pool without journaling — the in-process stand-in
// for kill -9 (modulo quantum granularity; the real-signal path is
// exercised by the smoke-wfd gauntlet). The journal on disk is whatever
// the periodic writes left behind.
func (d *Daemon) Kill() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

// quotaErr builds an admission rejection.
func quotaErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrQuota, fmt.Sprintf(format, args...))
}
