package wfd

import (
	"context"
	"errors"
	"maps"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"
)

// quickSpec is a small, fast job for scheduler tests.
func quickSpec(tenant string, seed uint64, iters int) JobSpec {
	return JobSpec{Tenant: tenant, Searcher: "random", Seed: seed, Iterations: iters}
}

func waitAll(t *testing.T, d *Daemon, ids ...string) {
	t.Helper()
	// Generous: the learned searchers under -race on a small CI box are
	// 10x+ slower than a plain run.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, id := range ids {
		if err := d.WaitJob(ctx, id); err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
	}
}

// TestFairShare: tenant A submits 4 jobs, tenant B submits 1; with a
// single stepper, the per-quantum trace must alternate tenants (least
// service first), not drain A's queue before B's.
func TestFairShare(t *testing.T) {
	var mu sync.Mutex
	type q struct {
		tenant string
		served int
	}
	var trace []q
	d, err := New(Config{Steppers: 1, Quantum: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	d.mu.Lock()
	d.testQuantum = func(_, tenant string, served int) {
		mu.Lock()
		trace = append(trace, q{tenant, served})
		mu.Unlock()
	}
	d.mu.Unlock()

	var ids []string
	for i := 0; i < 4; i++ {
		id, err := d.Submit(quickSpec("a", uint64(i+1), 20))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	id, err := d.Submit(quickSpec("b", 9, 20))
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, id)
	waitAll(t, d, ids...)

	// Replay the trace: whenever both tenants still have pending demand,
	// a quantum must go to one at the minimum service — tenant b (admitted
	// last, service 0) catches up first and then the two alternate; a must
	// never pull further ahead while b still has work. The window before
	// b's admission (it was submitted while a was already being served) is
	// exempt: a tenant cannot be scheduled before it exists.
	service := map[string]int{"a": 0, "b": 0}
	remaining := map[string]int{"a": 80, "b": 20}
	seenB := false
	for i, step := range trace {
		if step.tenant == "b" {
			seenB = true
		}
		for _, tenant := range slices.Sorted(maps.Keys(service)) {
			if tenant == step.tenant || !seenB || remaining[tenant] == 0 {
				continue
			}
			if service[step.tenant] > service[tenant] {
				t.Fatalf("quantum %d went to %s (service %d) while %s had %d and pending work",
					i, step.tenant, service[step.tenant], tenant, service[tenant])
			}
		}
		service[step.tenant] += step.served
		remaining[step.tenant] -= step.served
	}
	if service["a"] != 80 || service["b"] != 20 {
		t.Fatalf("service a=%d b=%d, want 80/20", service["a"], service["b"])
	}
}

func TestAdmissionControl(t *testing.T) {
	d, err := New(Config{Steppers: 1, TenantMaxActive: 2, MaxActiveJobs: 3, TenantBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	// Large budgets keep the jobs active while the caps are probed.
	a1, err := d.Submit(quickSpec("a", 1, 40))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d.Submit(quickSpec("a", 2, 40))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(quickSpec("a", 3, 10)); !errors.Is(err, ErrQuota) {
		t.Fatalf("tenant cap: got %v, want ErrQuota", err)
	}
	b1, err := d.Submit(quickSpec("b", 1, 15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(quickSpec("c", 1, 10)); !errors.Is(err, ErrQuota) {
		t.Fatalf("daemon cap: got %v, want ErrQuota", err)
	}
	waitAll(t, d, a1, a2, b1)

	// Tenant a consumed 80 of its 100-observation budget: 10 more fits,
	// 30 does not.
	if _, err := d.Submit(quickSpec("a", 4, 30)); !errors.Is(err, ErrQuota) {
		t.Fatalf("budget: got %v, want ErrQuota", err)
	}
	ok, err := d.Submit(quickSpec("a", 5, 10))
	if err != nil {
		t.Fatalf("within budget: %v", err)
	}
	waitAll(t, d, ok)
}

func TestSubmitValidation(t *testing.T) {
	d, err := New(Config{Steppers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	for _, spec := range []JobSpec{
		{Searcher: "random", Iterations: 0},              // unbounded
		{Searcher: "simulated-annealing", Iterations: 5}, // unknown searcher
		{OS: "plan9", Searcher: "random", Iterations: 5}, // unknown OS
		{Metric: "joy", Searcher: "random", Iterations: 5},
		{Searcher: "random", Iterations: 5, Workers: -1},
		{Searcher: "random", Iterations: 5, Fixed: map[string]string{"nope": "y"}},
	} {
		if _, err := d.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Submit(%+v): got %v, want ErrBadSpec", spec, err)
		}
	}
}

// TestHoldRelease: a held daemon admits jobs but serves nothing — the
// whole batch sits queued with zero observations served — and Release
// drains it normally. This is the primitive the serve experiment leans on
// for an exact (not load-sampled) concurrency measurement.
func TestHoldRelease(t *testing.T) {
	d, err := New(Config{Steppers: 4, Quantum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	d.Hold()
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := d.Submit(quickSpec("a", uint64(i+1), 8))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Held: everything resident and queued, nothing served. The sleep
	// gives a buggy stepper a chance to claim work it must not.
	time.Sleep(20 * time.Millisecond)
	st := d.Status()
	if st.Queued != 6 || st.Running != 0 || st.Done != 0 || st.ServedTotal != 0 {
		t.Fatalf("held daemon served work: %+v", st)
	}
	d.Release()
	waitAll(t, d, ids...)
	if st := d.Status(); st.Done != 6 {
		t.Fatalf("after release: %d done, want 6", st.Done)
	}
	// Releasing an unheld daemon is a no-op.
	d.Release()
}

func TestCancel(t *testing.T) {
	d, err := New(Config{Steppers: 1, Quantum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	// A long job that would take a while; cancel it mid-flight.
	id, err := d.Submit(quickSpec("a", 1, 100000))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitAll(t, d, id)
	st, err := d.JobStatusByID(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "canceled" {
		t.Fatalf("state %q, want canceled", st.State)
	}
	if st.Observed >= 100000 {
		t.Fatalf("job ran to completion despite cancel")
	}
	if _, err := d.ReportJSON(id); !errors.Is(err, ErrNotDone) {
		t.Fatalf("report of canceled job: got %v, want ErrNotDone", err)
	}
	// Canceling again is a no-op; canceling the unknown fails.
	if err := d.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	// The canceled job's budget returned to the tenant.
	status := d.Status()
	if len(status.Tenants) != 1 || status.Tenants[0].Committed != 0 || status.Tenants[0].Active != 0 {
		t.Fatalf("accounting not released: %+v", status.Tenants)
	}
}

// TestEventReplay: attaching after completion replays the whole stream
// with contiguous sequence numbers, ending in a done event.
func TestEventReplay(t *testing.T) {
	d, err := New(Config{Steppers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	id, err := d.Submit(quickSpec("a", 1, 25))
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, d, id)
	backlog, live, cancel, err := d.Attach(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, ok := <-live; ok {
		t.Fatal("live channel of a finished job should be closed")
	}
	if len(backlog) == 0 {
		t.Fatal("no replayed events")
	}
	evals := 0
	for i, ev := range backlog {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Type == "eval" {
			evals++
		}
	}
	if evals != 25 {
		t.Fatalf("replayed %d eval events, want 25", evals)
	}
	if last := backlog[len(backlog)-1]; last.Type != "done" {
		t.Fatalf("last event %q, want done", last.Type)
	}
	// Partial replay picks up exactly where asked.
	mid := len(backlog) / 2
	part, _, cancel2, err := d.Attach(id, mid)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	if len(part) != len(backlog)-mid || part[0].Seq != mid {
		t.Fatalf("partial replay from %d: got %d events starting at %d", mid, len(part), part[0].Seq)
	}
}

// TestDeterministicAcrossQuanta: the same spec served under different
// quantum sizes and stepper counts yields byte-identical canonical
// reports.
func TestDeterministicAcrossQuanta(t *testing.T) {
	spec := JobSpec{Tenant: "x", Searcher: "bayesian", Seed: 7, Iterations: 40, Workers: 4}
	var ref []byte
	for _, cfg := range []Config{
		{Steppers: 1, Quantum: 1},
		{Steppers: 1, Quantum: 17},
		{Steppers: 4, Quantum: 3},
	} {
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		id, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitAll(t, d, id)
		rep, err := d.ReportJSON(id)
		if err != nil {
			t.Fatal(err)
		}
		d.Kill()
		if ref == nil {
			ref = rep
		} else if string(ref) != string(rep) {
			t.Fatalf("report differs under config %+v", cfg)
		}
	}
	if !strings.Contains(string(ref), `"searcher":"bayesian"`) {
		t.Fatalf("unexpected report: %.120s", ref)
	}
}

func TestSubmitAfterKill(t *testing.T) {
	d, err := New(Config{Steppers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Kill()
	if _, err := d.Submit(quickSpec("a", 1, 5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}
