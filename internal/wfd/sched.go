// Fair-share scheduling: a pool of stepper goroutines advances jobs in
// Step(Quantum) slices, always picking a runnable job of the tenant with
// the least service (observations consumed) so far — so every tenant makes
// even progress regardless of how many jobs each has in flight. Admission
// control (caps and budgets) runs at Submit; per-quantum accounting charges
// tenants by the session's Usage delta.
package wfd

import (
	"context"
	"fmt"
	"sort"
	"time"

	wayfinder "wayfinder"
	"wayfinder/internal/artifact"
	"wayfinder/internal/core"
)

// jobState is a job's lifecycle position.
type jobState int

const (
	stateQueued   jobState = iota // admitted, waiting for a stepper
	stateRunning                  // a stepper is inside Step
	stateDone                     // completed; report available
	stateCanceled                 // canceled before completion
	stateFailed                   // construction or journaling failed fatally
)

func (s jobState) String() string {
	switch s {
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	case stateCanceled:
		return "canceled"
	case stateFailed:
		return "failed"
	}
	return "unknown"
}

// terminal reports whether the state is final.
func (s jobState) terminal() bool {
	return s == stateDone || s == stateCanceled || s == stateFailed
}

// job is one admitted tuning job. Scheduling fields are guarded by the
// daemon mutex; the session itself is only touched by the stepper that
// holds the job in stateRunning (or by recovery/shutdown, when no stepper
// does).
type job struct {
	id     string
	seq    int
	spec   JobSpec // defaulted
	tenant *tenant

	sess *wayfinder.Session // nil for jobs recovered already-terminal
	hub  *hub
	done chan struct{} // closed on reaching a terminal state

	state     jobState
	canceling bool // cancel requested while running

	// journalable: the job's snapshot can be written (checkpointable
	// searcher, no snapshot errors so far). Non-journalable in-flight jobs
	// restart from scratch after a crash.
	journalable  bool
	sinceJournal int // observations since the last snapshot

	usage core.Usage // cumulative session usage at the last quantum boundary

	// Summary fields, refreshed after every quantum (valid even after the
	// session is gone).
	observed   int
	crashes    int
	bestMetric float64
	bestConfig string
	elapsedSec float64

	err        string
	reportJSON []byte // canonical final report, set in stateDone
	doneAt     time.Time
}

// Submit validates, admits, constructs, and queues a job, returning its
// daemon-assigned ID. Admission is atomic: the tenant's active-job and
// budget quotas are checked and charged before the (comparatively slow)
// session construction, and rolled back if construction fails.
func (d *Daemon) Submit(spec JobSpec) (string, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return "", err
	}
	if spec.Corpus && d.corpus == nil {
		return "", fmt.Errorf("%w: job asks for the shared corpus but the daemon has none configured (start wfd with -corpus)", ErrBadSpec)
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return "", ErrClosed
	}
	if n := d.activeLocked(); n >= d.cfg.MaxActiveJobs {
		d.mu.Unlock()
		return "", quotaErr("daemon at max active jobs (%d)", d.cfg.MaxActiveJobs)
	}
	t := d.tenantLocked(spec.Tenant)
	if t.active >= d.cfg.TenantMaxActive {
		d.mu.Unlock()
		return "", quotaErr("tenant %q at max active jobs (%d)", t.name, d.cfg.TenantMaxActive)
	}
	if b := d.cfg.TenantBudget; b > 0 && t.servedTerminal+t.committed+spec.Iterations > b {
		d.mu.Unlock()
		return "", quotaErr("tenant %q observation budget exhausted (%d committed + %d served + %d requested > %d)",
			t.name, t.committed, t.servedTerminal, spec.Iterations, b)
	}
	seq := d.nextSeq
	d.nextSeq++
	t.active++
	t.committed += spec.Iterations
	d.mu.Unlock()

	j := &job{
		id:          fmt.Sprintf("j%06d", seq),
		seq:         seq,
		spec:        spec,
		tenant:      t,
		hub:         newHub(d.cfg.EventLogCap),
		done:        make(chan struct{}),
		journalable: spec.Searcher != "unicorn",
	}
	sess, err := spec.buildSession(d.observer(j), d.jobCorpus(spec))
	if err != nil {
		d.mu.Lock()
		t.active--
		t.committed -= spec.Iterations
		d.mu.Unlock()
		return "", fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	j.sess = sess
	if d.cfg.StateDir != "" {
		if err := d.writeSpec(j); err != nil {
			d.mu.Lock()
			t.active--
			t.committed -= spec.Iterations
			d.mu.Unlock()
			return "", err
		}
		if spec.WarmStartK > 0 {
			// Journal warm-started jobs immediately: the admission snapshot
			// carries the resolved warm start (seed queue, weights), so a
			// crash before the first periodic snapshot still resumes from
			// the original query answer instead of re-asking a corpus other
			// jobs have since grown.
			d.journalJob(j)
		}
	}

	d.mu.Lock()
	d.insertLocked(j)
	d.cond.Signal()
	d.mu.Unlock()
	d.cfg.Logf("wfd: admitted %s tenant=%s %s/%s/%s seed=%d iters=%d",
		j.id, spec.Tenant, spec.OS, spec.Searcher, spec.Metric, spec.Seed, spec.Iterations)
	return j.id, nil
}

// insertLocked registers a job keeping d.order sorted by seq (submissions
// race between seq assignment and registration).
func (d *Daemon) insertLocked(j *job) {
	d.jobs[j.id] = j
	i := sort.Search(len(d.order), func(i int) bool {
		return d.jobs[d.order[i]].seq > j.seq
	})
	d.order = append(d.order, "")
	copy(d.order[i+1:], d.order[i:])
	d.order[i] = j.id
}

// activeLocked counts queued+running jobs daemon-wide.
func (d *Daemon) activeLocked() int {
	n := 0
	for _, t := range d.tenants {
		n += t.active
	}
	return n
}

// observer builds the session observer wiring a job's events into its hub
// and the daemon's cross-session build index. It runs synchronously on the
// stepping goroutine, inside Step.
func (d *Daemon) observer(j *job) func(core.Event) {
	return func(ev core.Event) {
		if ed, ok := ev.(core.EvalDone); ok {
			d.indexBuild(ed.Result)
		}
		if we, ok := wireEvent(ev); ok {
			j.hub.publish(we)
		}
	}
}

// indexBuild records an actually-compiled image in the cross-session build
// index and counts duplicates: builds of an image some session (this one or
// another) already produced — the compute a physically shared store would
// have saved. Skipped/cached/failed builds produce no image.
func (d *Daemon) indexBuild(res core.Result) {
	if res.Config == nil || res.BuildSkipped || res.CacheHit || res.Stage == "build" {
		return
	}
	key := res.Config.CompileKey()
	d.storeMu.Lock()
	if _, loc := d.store.Lookup(0, key); loc != artifact.Miss {
		d.dupBuilds++
	} else {
		d.store.Put(artifact.Artifact{Key: key, Host: 0})
	}
	d.storeMu.Unlock()
}

// nextLocked blocks until a queued job is available (returning it marked
// running) or the daemon closes (returning nil); while the daemon is held
// it claims nothing. Fair share: the queued
// job whose tenant has the least service, tie-broken by admission order.
func (d *Daemon) nextLocked() *job {
	for {
		if d.closed {
			return nil
		}
		if d.held {
			d.cond.Wait()
			continue
		}
		var pick *job
		for _, id := range d.order {
			j := d.jobs[id]
			if j.state != stateQueued {
				continue
			}
			if pick == nil || j.tenant.service < pick.tenant.service {
				pick = j
			}
		}
		if pick != nil {
			pick.state = stateRunning
			return pick
		}
		d.cond.Wait()
	}
}

// stepper is one scheduling worker: pick the fairest queued job, advance
// it a quantum, charge its tenant, journal if due, and either requeue it
// or drive it to a terminal state.
func (d *Daemon) stepper() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		j := d.nextLocked()
		quantum := d.cfg.Quantum
		canceling := j != nil && j.canceling
		d.mu.Unlock()
		if j == nil {
			return
		}
		if canceling {
			// Canceled while queued: the claiming stepper retires it without
			// stepping — routing every terminal transition through the job's
			// owning stepper keeps them race-free.
			d.terminate(j, stateCanceled, "canceled")
			continue
		}

		n := j.sess.Step(quantum)
		u := j.sess.Usage()
		done := j.sess.Done()
		rep := j.sess.Report()

		d.mu.Lock()
		delta := u.Sub(j.usage)
		j.usage = u
		j.tenant.service += delta.Observations
		j.tenant.computeSec += delta.ComputeSec
		d.servedTotal += delta.Observations
		d.quanta++
		j.observed = u.Observations
		j.crashes = rep.Crashes
		j.elapsedSec = rep.ElapsedSec
		if rep.Best != nil {
			j.bestMetric = rep.Best.Metric
			j.bestConfig = rep.Best.ConfigString
		}
		j.sinceJournal += n
		canceled := j.canceling
		journalDue := d.cfg.StateDir != "" && j.journalable && j.sinceJournal >= d.cfg.JournalEvery
		hook := d.testQuantum
		d.mu.Unlock()

		if hook != nil {
			hook(j.id, j.spec.Tenant, n)
		}

		switch {
		case done:
			d.finish(j)
		case canceled:
			d.terminate(j, stateCanceled, "canceled")
		default:
			if journalDue {
				d.journalJob(j)
				j.sinceJournal = 0
			}
			d.mu.Lock()
			j.state = stateQueued
			d.cond.Signal()
			d.mu.Unlock()
		}
	}
}

// finish completes a job: canonical report to the journal, accounting
// released, waiters and subscribers notified.
func (d *Daemon) finish(j *job) {
	bytes, err := CanonicalReportJSON(j.sess.Report())
	if err != nil {
		d.terminate(j, stateFailed, fmt.Sprintf("marshal report: %v", err))
		return
	}
	if d.cfg.StateDir != "" {
		if err := d.writeReport(j, bytes); err != nil {
			d.cfg.Logf("wfd: %s: journal report: %v", j.id, err)
		}
	}
	d.mu.Lock()
	j.state = stateDone
	j.reportJSON = bytes
	j.doneAt = time.Now()
	d.releaseLocked(j)
	d.mu.Unlock()
	j.hub.close()
	close(j.done)
	d.cfg.Logf("wfd: %s done: %d observations, best=%g", j.id, j.observed, j.bestMetric)
}

// terminate moves a job to a non-done terminal state.
func (d *Daemon) terminate(j *job, state jobState, reason string) {
	d.mu.Lock()
	if j.state.terminal() {
		d.mu.Unlock()
		return
	}
	j.state = state
	j.err = reason
	j.doneAt = time.Now()
	d.releaseLocked(j)
	observed := j.observed
	d.mu.Unlock()
	if d.cfg.StateDir != "" {
		if err := d.writeStatus(j, state.String(), reason, observed); err != nil {
			d.cfg.Logf("wfd: %s: journal status: %v", j.id, err)
		}
	}
	j.hub.close()
	close(j.done)
	d.cfg.Logf("wfd: %s %s (%s)", j.id, state, reason)
}

// releaseLocked returns a terminal job's admission charges to its tenant;
// what it actually consumed moves to the served ledger.
func (d *Daemon) releaseLocked(j *job) {
	j.tenant.active--
	j.tenant.committed -= j.spec.Iterations
	j.tenant.servedTerminal += j.observed
}

// Cancel stops a job: a running one at its current quantum boundary, a
// queued one as soon as a stepper claims it. Canceling a terminal job is a
// no-op.
func (d *Daemon) Cancel(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !j.state.terminal() {
		j.canceling = true
		d.cond.Signal()
	}
	return nil
}

// WaitJob blocks until the job reaches a terminal state or the context
// ends.
func (d *Daemon) WaitJob(ctx context.Context, id string) error {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReportJSON returns a completed job's canonical final report bytes —
// verbatim what the journal holds, so every reader (attached client,
// restarted daemon, smoke gauntlet) compares the same bytes.
func (d *Daemon) ReportJSON(id string) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if j.state != stateDone {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotDone, id, j.state)
	}
	return j.reportJSON, nil
}

// Attach subscribes to a job's event stream from sequence `from`,
// returning the retained backlog, a live channel (closed at job end), and
// a cancel function.
func (d *Daemon) Attach(id string, from int) ([]WireEvent, <-chan WireEvent, func(), error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	backlog, ch, cancel := j.hub.subscribe(from)
	return backlog, ch, cancel, nil
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Tenant   string `json:"tenant"`
	State    string `json:"state"`
	OS       string `json:"os"`
	App      string `json:"app"`
	Metric   string `json:"metric"`
	Searcher string `json:"searcher"`
	Seed     uint64 `json:"seed"`

	Observed   int     `json:"observed"`
	Iterations int     `json:"iterations"`
	Crashes    int     `json:"crashes"`
	BestMetric float64 `json:"best_metric,omitempty"`
	BestConfig string  `json:"best_config,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec"`

	Events      int    `json:"events"`
	Journalable bool   `json:"journalable"`
	Err         string `json:"error,omitempty"`
}

// statusLocked builds a job's status; call with d.mu held.
func (j *job) statusLocked() JobStatus {
	return JobStatus{
		ID:          j.id,
		Name:        j.spec.Name,
		Tenant:      j.spec.Tenant,
		State:       j.state.String(),
		OS:          j.spec.OS,
		App:         j.spec.App,
		Metric:      j.spec.Metric,
		Searcher:    j.spec.Searcher,
		Seed:        j.spec.Seed,
		Observed:    j.observed,
		Iterations:  j.spec.Iterations,
		Crashes:     j.crashes,
		BestMetric:  j.bestMetric,
		BestConfig:  j.bestConfig,
		ElapsedSec:  j.elapsedSec,
		Events:      j.hub.size(),
		Journalable: j.journalable,
		Err:         j.err,
	}
}

// JobStatusByID returns one job's status.
func (d *Daemon) JobStatusByID(id string) (JobStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j.statusLocked(), nil
}

// Jobs lists every job in admission order.
func (d *Daemon) Jobs() []JobStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobStatus, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.jobs[id].statusLocked())
	}
	return out
}

// TenantStatus is one tenant's accounting snapshot.
type TenantStatus struct {
	Name string `json:"name"`
	// Active is the tenant's queued+running job count; Committed the
	// observation budget those jobs hold reserved.
	Active    int `json:"active"`
	Committed int `json:"committed"`
	// Served is the observations consumed by the tenant's terminal jobs;
	// Service the fair-share position (all observations consumed, live
	// jobs included).
	Served     int     `json:"served"`
	Service    int     `json:"service"`
	ComputeSec float64 `json:"compute_sec"`
}

// DaemonStatus is the daemon-wide snapshot.
type DaemonStatus struct {
	Jobs     int `json:"jobs"`
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Canceled int `json:"canceled"`
	Failed   int `json:"failed"`

	Tenants []TenantStatus `json:"tenants"`

	// ServedTotal is the observations served across all jobs this process
	// lifetime; Quanta the scheduling slices that served them.
	ServedTotal int   `json:"served_total"`
	Quanta      int64 `json:"quanta"`
	// Recovered/Resumed count jobs recovered from the journal at startup
	// and, of those, resumed mid-flight from a snapshot.
	Recovered int `json:"recovered"`
	Resumed   int `json:"resumed"`

	// UniqueBuilds/DupBuilds summarize the cross-session build index:
	// distinct images compiled fleet-wide, and repeat compilations of an
	// image some session had already built (the saving a shared physical
	// store would realize).
	UniqueBuilds int `json:"unique_builds"`
	DupBuilds    int `json:"dup_builds"`

	// CorpusEntries/CorpusHash summarize the shared transfer corpus
	// (absent when the daemon has none configured).
	CorpusEntries int    `json:"corpus_entries,omitempty"`
	CorpusHash    string `json:"corpus_hash,omitempty"`

	UptimeSec float64 `json:"uptime_sec"`
}

// Status snapshots the daemon.
func (d *Daemon) Status() DaemonStatus {
	d.mu.Lock()
	st := DaemonStatus{
		Jobs:        len(d.jobs),
		ServedTotal: d.servedTotal,
		Quanta:      d.quanta,
		Recovered:   d.recovered,
		Resumed:     d.resumed,
		UptimeSec:   time.Since(d.startedAt).Seconds(),
	}
	for _, j := range d.jobs {
		switch j.state {
		case stateQueued:
			st.Queued++
		case stateRunning:
			st.Running++
		case stateDone:
			st.Done++
		case stateCanceled:
			st.Canceled++
		case stateFailed:
			st.Failed++
		}
	}
	names := make([]string, 0, len(d.tenants))
	for name := range d.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := d.tenants[name]
		st.Tenants = append(st.Tenants, TenantStatus{
			Name:       t.name,
			Active:     t.active,
			Committed:  t.committed,
			Served:     t.servedTerminal,
			Service:    t.service,
			ComputeSec: t.computeSec,
		})
	}
	d.mu.Unlock()

	d.storeMu.Lock()
	st.UniqueBuilds = d.store.Len(0)
	st.DupBuilds = d.dupBuilds
	d.storeMu.Unlock()

	if d.corpus != nil {
		st.CorpusEntries = d.corpus.Len()
		st.CorpusHash = d.corpus.Hash()
	}
	return st
}
