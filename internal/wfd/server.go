// The daemon's HTTP+JSON API, normally served over a unix-domain socket:
//
//	POST   /v1/jobs              submit a JobSpec  → {"id": "j000001"}
//	GET    /v1/jobs              list job statuses
//	GET    /v1/jobs/{id}         one job's status
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/jobs/{id}/events  NDJSON event stream (?from=N replays)
//	GET    /v1/jobs/{id}/report  canonical final report (?wait=1 blocks)
//	GET    /v1/status            daemon-wide status
package wfd

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"os"
	"strconv"
)

// NewHandler exposes the daemon over HTTP.
func NewHandler(d *Daemon) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", d.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", d.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/report", d.handleReport)
	mux.HandleFunc("GET /v1/status", d.handleStatus)
	return mux
}

// Listen opens the daemon's listener: "host:port" serves TCP, anything
// else is a unix-socket path (a stale socket file is replaced).
func Listen(addr string) (net.Listener, error) {
	if _, _, err := net.SplitHostPort(addr); err == nil {
		return net.Listen("tcp", addr)
	}
	if _, err := os.Stat(addr); err == nil {
		os.Remove(addr)
	}
	return net.Listen("unix", addr)
}

// httpError maps daemon sentinel errors onto status codes and writes a
// JSON error body.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrQuota):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotDone):
		code = http.StatusConflict
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, errors.Join(ErrBadSpec, err))
		return
	}
	id, err := d.Submit(spec)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (d *Daemon) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Jobs())
}

func (d *Daemon) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := d.JobStatusByID(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := d.Cancel(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "canceling"})
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Status())
}

// handleReport serves the canonical final report bytes verbatim; ?wait=1
// blocks until the job terminates first.
func (d *Daemon) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.URL.Query().Get("wait") != "" {
		if err := d.WaitJob(r.Context(), id); err != nil {
			httpError(w, err)
			return
		}
	}
	report, err := d.ReportJSON(id)
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(report)
}

// handleEvents streams a job's events as NDJSON: the retained backlog from
// ?from=N (default 0), then live events until the job terminates, the
// client disconnects, or it lags beyond the subscriber buffer (it then
// re-attaches from the last sequence it saw).
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if s := r.URL.Query().Get("from"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			httpError(w, errors.Join(ErrBadSpec, errors.New("bad from parameter")))
			return
		}
		from = n
	}
	backlog, live, cancel, err := d.Attach(id, from)
	if err != nil {
		httpError(w, err)
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, ev := range backlog {
		if enc.Encode(ev) != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if enc.Encode(ev) != nil {
				return
			}
			// Flush per event: attached clients watch live.
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
