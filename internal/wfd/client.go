// Client is the Go client for a running daemon — what wfctl's daemon mode
// and the serve load generator drive the API with.
package wfd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// Client talks to a daemon over its HTTP API.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for addr: "host:port" or an http:// URL
// connects over TCP, anything else is a unix-socket path.
func NewClient(addr string) *Client {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return &Client{base: strings.TrimSuffix(addr, "/"), http: &http.Client{}}
	}
	if _, _, err := net.SplitHostPort(addr); err == nil {
		return &Client{base: "http://" + addr, http: &http.Client{}}
	}
	// Unix socket: every connection dials the socket; the URL host is a
	// placeholder.
	transport := &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", addr)
		},
	}
	return &Client{base: "http://wfd", http: &http.Client{Transport: transport}}
}

// do issues a request and decodes the JSON response into out (skipped when
// out is nil), converting API error bodies into errors.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = strings.NewReader(string(data))
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError converts an error response into a Go error, recovering the
// daemon's sentinel classes from the status code.
func apiError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadSpec, msg)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s", ErrQuota, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrClosed, msg)
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrNotDone, msg)
	}
	return fmt.Errorf("wfd: %s", msg)
}

// Submit submits a job, returning its ID.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Jobs lists all jobs.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Job returns one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Status returns the daemon-wide status.
func (c *Client) Status(ctx context.Context) (DaemonStatus, error) {
	var out DaemonStatus
	err := c.do(ctx, http.MethodGet, "/v1/status", nil, &out)
	return out, err
}

// Report fetches a completed job's canonical report bytes; wait blocks
// until the job terminates.
func (c *Client) Report(ctx context.Context, id string, wait bool) ([]byte, error) {
	path := "/v1/jobs/" + id + "/report"
	if wait {
		path += "?wait=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Events streams a job's events from sequence `from`, invoking fn per
// event until the stream ends (the job terminated), fn returns false, or
// the context ends. Returns the next sequence number to resume from.
func (c *Client) Events(ctx context.Context, id string, from int, fn func(WireEvent) bool) (int, error) {
	path := fmt.Sprintf("/v1/jobs/%s/events?from=%d", id, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return from, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return from, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return from, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	next := from
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev WireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return next, fmt.Errorf("wfd: bad event line: %w", err)
		}
		next = ev.Seq + 1
		if !fn(ev) {
			return next, nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return next, err
	}
	return next, nil
}
