// Job specifications: the declarative description a client submits and
// the daemon journals. A spec is everything needed to (re)construct its
// session deterministically — the crash-restart guarantee rests on a
// session being a pure function of its spec, so specs carry no live
// state; live state travels separately as session snapshots.
package wfd

import (
	"encoding/json"
	"fmt"
	"maps"
	"slices"

	wayfinder "wayfinder"
	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/corpus"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/fault"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
)

// JobSpec declares one tuning job.
type JobSpec struct {
	// Name is a client-chosen label (shown in listings; need not be
	// unique — the daemon assigns the job ID).
	Name string `json:"name,omitempty"`
	// Tenant names the submitting tenant for fair-share scheduling and
	// quota accounting ("default" when empty).
	Tenant string `json:"tenant,omitempty"`
	// OS selects the simulated profile: linux (default), unikraft, or
	// linux-riscv.
	OS string `json:"os,omitempty"`
	// App selects the workload: nginx (default), redis, sqlite, npb.
	App string `json:"app,omitempty"`
	// Metric selects the objective: throughput (default, aliases
	// performance/latency), memory, or score.
	Metric string `json:"metric,omitempty"`
	// Searcher selects the strategy: deeptune (default), random, grid,
	// bayesian, or unicorn. All but unicorn checkpoint, so their jobs
	// resume from journal snapshots; unicorn jobs restart from scratch
	// after a crash (same final bytes, wasted work).
	Searcher string `json:"searcher,omitempty"`
	// Seed is the session seed.
	Seed uint64 `json:"seed"`
	// Iterations is the observation budget. The daemon requires it
	// (> 0): admission control charges tenants for a job's full budget up
	// front, so unbounded jobs are not admissible.
	Iterations int `json:"iterations"`
	// TimeBudgetSec optionally bounds the session's virtual time too.
	TimeBudgetSec float64 `json:"time_budget_sec,omitempty"`
	// Workers, Async, Staleness, and Hosts configure the session's
	// simulated evaluation fleet exactly as the library options do.
	Workers   int  `json:"workers,omitempty"`
	Async     bool `json:"async,omitempty"`
	Staleness int  `json:"staleness,omitempty"`
	Hosts     int  `json:"hosts,omitempty"`
	// DisableCache turns the session's shared artifact store off.
	DisableCache bool `json:"disable_cache,omitempty"`
	// SurrogateWindow bounds a learned searcher's surrogate to a sliding
	// window of recent observations (min 8; 0 = unbounded); bayesian and
	// deeptune only, exactly as the library option.
	SurrogateWindow int `json:"surrogate_window,omitempty"`
	// FaultSchedule is a fault-injection schedule in the fault DSL
	// (e.g. "down:1@300,up:1@900,retry:3/20/2"); empty means no faults.
	// The schedule is part of the spec — not live state — so a resumed
	// job replays the same deterministic churn.
	FaultSchedule string `json:"fault_schedule,omitempty"`
	// Dispatch selects the placement policy: static (default) or
	// locality.
	Dispatch string `json:"dispatch,omitempty"`
	// Favor maps a parameter class (compile/boot/runtime) to a sampling
	// weight; Fixed pins parameters to constant values.
	Favor map[string]float64 `json:"favor,omitempty"`
	Fixed map[string]string  `json:"fixed,omitempty"`
	// Corpus opts the job into the daemon's shared transfer corpus: its
	// completed outcome is deposited there, accumulating tuning memory
	// across jobs and tenants. Requires a daemon configured with a corpus
	// directory.
	Corpus bool `json:"corpus,omitempty"`
	// WarmStartK warm-starts the session from its K nearest corpus
	// neighbors: their best configs dispatch as the first proposals, and
	// a deeptune searcher restores the nearest neighbor's model weights.
	// Requires Corpus and a checkpointable searcher — a crashed unicorn
	// job would restart from scratch and re-query a corpus that has since
	// grown, breaking deterministic resume.
	WarmStartK int `json:"warm_start_k,omitempty"`
}

// SpecFromJob lifts a parsed YAML job file into a JobSpec (the wfctl
// submit path; daemon-level fields — tenant, seed, searcher — are the
// caller's).
func SpecFromJob(job *configspace.Job) JobSpec {
	return JobSpec{
		Name:          job.Name,
		OS:            job.OS,
		App:           job.App,
		Metric:        job.Metric,
		Iterations:    job.Iterations,
		TimeBudgetSec: job.TimeBudgetSec,
		Favor:         job.Favor,
		Fixed:         job.Fixed,
	}
}

// withDefaults fills the defaulted fields.
func (sp JobSpec) withDefaults() JobSpec {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if sp.OS == "" {
		sp.OS = "linux"
	}
	if sp.App == "" {
		sp.App = "nginx"
	}
	if sp.Metric == "" {
		sp.Metric = "throughput"
	}
	if sp.Searcher == "" {
		sp.Searcher = "deeptune"
	}
	return sp
}

// options maps the spec onto session options. It fails only on an
// unparseable fault schedule — everything else defers to Options.Validate.
func (sp JobSpec) options() (core.Options, error) {
	sched, err := fault.Parse(sp.FaultSchedule)
	if err != nil {
		return core.Options{}, fmt.Errorf("%w: fault_schedule: %v", ErrBadSpec, err)
	}
	return core.Options{
		Iterations:      sp.Iterations,
		TimeBudgetSec:   sp.TimeBudgetSec,
		Seed:            sp.Seed,
		Workers:         sp.Workers,
		Async:           sp.Async,
		Staleness:       sp.Staleness,
		Hosts:           sp.Hosts,
		DisableCache:    sp.DisableCache,
		SurrogateWindow: sp.SurrogateWindow,
		Faults:          sched,
		Dispatch:        sp.Dispatch,
		WarmStartK:      sp.WarmStartK,
	}, nil
}

// Validate rejects specs the daemon cannot admit or reconstruct. It
// builds nothing: the model/searcher construction errors surface at
// submission via buildSession.
func (sp JobSpec) Validate() error {
	sp = sp.withDefaults()
	switch sp.OS {
	case "linux", "unikraft", "linux-riscv", "riscv":
	default:
		return fmt.Errorf("%w: unknown os %q (linux|unikraft|linux-riscv)", ErrBadSpec, sp.OS)
	}
	if _, err := apps.ByName(sp.App); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	switch sp.Metric {
	case "throughput", "performance", "latency", "memory", "score":
	default:
		return fmt.Errorf("%w: unknown metric %q (throughput|memory|score)", ErrBadSpec, sp.Metric)
	}
	switch sp.Searcher {
	case "random", "grid", "bayesian", "deeptune", "unicorn":
	default:
		return fmt.Errorf("%w: unknown searcher %q (random|grid|bayesian|deeptune|unicorn)", ErrBadSpec, sp.Searcher)
	}
	if sp.Iterations <= 0 {
		return fmt.Errorf("%w: the daemon requires a positive iteration budget (admission control charges tenants up front)", ErrBadSpec)
	}
	if sp.SurrogateWindow != 0 && sp.Searcher != "bayesian" && sp.Searcher != "deeptune" {
		return fmt.Errorf("%w: surrogate_window only applies to the learned searchers (bayesian, deeptune; got %q)",
			ErrBadSpec, sp.Searcher)
	}
	if sp.WarmStartK != 0 && !sp.Corpus {
		return fmt.Errorf("%w: warm_start_k requires corpus", ErrBadSpec)
	}
	if sp.WarmStartK > 0 && sp.Searcher == "unicorn" {
		return fmt.Errorf("%w: warm_start_k needs a checkpointable searcher (unicorn restarts from scratch after a crash and would re-query a grown corpus)", ErrBadSpec)
	}
	for _, class := range slices.Sorted(maps.Keys(sp.Favor)) {
		if _, err := configspace.ParseClass(class); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	opts, err := sp.options()
	if err != nil {
		return err
	}
	if err := opts.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return nil
}

// buildModel constructs the spec's simulated OS model with favor weights
// and fixed parameters applied — identically on every (re)construction,
// which the deterministic-resume guarantee requires.
func (sp JobSpec) buildModel() (*simos.Model, error) {
	var model *simos.Model
	switch sp.OS {
	case "linux":
		model = simos.NewLinux(simos.DefaultLinuxOptions())
	case "unikraft":
		model = simos.NewUnikraft(1)
	case "linux-riscv", "riscv":
		model = simos.NewRiscv(simos.DefaultRiscvOptions())
	default:
		return nil, fmt.Errorf("%w: unknown os %q", ErrBadSpec, sp.OS)
	}
	for _, class := range slices.Sorted(maps.Keys(sp.Favor)) {
		cl, err := configspace.ParseClass(class)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		model.Space.Favor(cl, sp.Favor[class])
	}
	for _, name := range slices.Sorted(maps.Keys(sp.Fixed)) {
		raw := sp.Fixed[name]
		p, _ := model.Space.Lookup(name)
		if p == nil {
			return nil, fmt.Errorf("%w: fixed parameter %q not in the %s space", ErrBadSpec, name, sp.OS)
		}
		v, err := p.ParseValue(raw)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		if err := model.Space.Fix(name, v); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	return model, nil
}

// buildMetric constructs the spec's metric.
func (sp JobSpec) buildMetric(app *simos.App) (core.Metric, error) {
	switch sp.Metric {
	case "throughput", "performance", "latency":
		return &core.PerfMetric{App: app}, nil
	case "memory":
		return core.MemoryMetric{}, nil
	case "score":
		return &core.ScoreMetric{}, nil
	}
	return nil, fmt.Errorf("%w: unknown metric %q", ErrBadSpec, sp.Metric)
}

// buildSearcher constructs a fresh searcher with spec-determined
// constructor arguments (what Snapshot/Resume requires).
func (sp JobSpec) buildSearcher(model *simos.Model, maximize bool) (search.Searcher, error) {
	switch sp.Searcher {
	case "random":
		return search.NewRandom(model.Space, sp.Seed), nil
	case "grid":
		return search.NewGrid(model.Space), nil
	case "bayesian":
		return search.NewBayesian(model.Space, maximize, sp.Seed), nil
	case "deeptune":
		cfg := deeptune.DefaultConfig()
		cfg.Seed = sp.Seed
		return search.NewDeepTune(model.Space, maximize, cfg), nil
	case "unicorn":
		return search.NewUnicorn(model.Space, maximize, sp.Seed), nil
	}
	return nil, fmt.Errorf("%w: unknown searcher %q", ErrBadSpec, sp.Searcher)
}

// assemble builds the construction inputs shared by fresh and resumed
// sessions.
func (sp JobSpec) assemble() (*simos.Model, *simos.App, core.Metric, search.Searcher, error) {
	model, err := sp.buildModel()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	app, err := apps.ByName(sp.App)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	metric, err := sp.buildMetric(app)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	searcher, err := sp.buildSearcher(model, metric.Maximize())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return model, app, metric, searcher, nil
}

// buildSession constructs the spec's session from scratch. A corpus-opted
// spec gets the daemon's shared store: the session queries it for warm
// starts at construction and deposits into it at completion.
func (sp JobSpec) buildSession(observer func(core.Event), st *corpus.Store) (*wayfinder.Session, error) {
	sp = sp.withDefaults()
	model, app, metric, searcher, err := sp.assemble()
	if err != nil {
		return nil, err
	}
	opts, err := sp.options()
	if err != nil {
		return nil, err
	}
	wfOpts := []wayfinder.Option{
		wayfinder.WithMetric(metric),
		wayfinder.WithSearcher(searcher),
		wayfinder.WithOptions(opts),
		wayfinder.WithObserver(observer),
	}
	if st != nil {
		wfOpts = append(wfOpts, wayfinder.WithCorpusStore(st))
	}
	return wayfinder.New(model, app, wfOpts...)
}

// resumeSession reconstructs the spec's session from a journal snapshot,
// continuing byte-identically to an uninterrupted run. The corpus store
// reattaches for deposit only: the snapshot carries the original warm
// start (seed queue and weights) verbatim, so the resumed session never
// re-queries a corpus that may have grown since admission.
func (sp JobSpec) resumeSession(snapshot []byte, observer func(core.Event), st *corpus.Store) (*wayfinder.Session, error) {
	sp = sp.withDefaults()
	model, app, metric, searcher, err := sp.assemble()
	if err != nil {
		return nil, err
	}
	wfOpts := []wayfinder.Option{
		wayfinder.WithMetric(metric),
		wayfinder.WithSearcher(searcher),
		wayfinder.WithObserver(observer),
	}
	if st != nil {
		wfOpts = append(wfOpts, wayfinder.WithCorpusStore(st))
	}
	return wayfinder.Resume(model, app, snapshot, wfOpts...)
}

// CanonicalReportJSON marshals a report in the canonical form the daemon's
// byte-identical crash-restart guarantee is stated over: the wall-time
// DecisionCost fields — real time spent in the searcher, the one
// non-virtual quantity a report carries — are zeroed; everything else
// (history, configurations, virtual timings, cache accounting) is exact.
func CanonicalReportJSON(rep *core.Report) ([]byte, error) {
	cp := *rep
	cp.History = append([]core.Result(nil), rep.History...)
	for i := range cp.History {
		cp.History[i].DecisionCost = 0
	}
	if rep.Best != nil {
		best := *rep.Best
		best.DecisionCost = 0
		cp.Best = &best
	}
	return json.Marshal(&cp)
}
