package wfd

import (
	"errors"
	"strings"
	"testing"

	"wayfinder/internal/configspace"
)

func TestSpecFromJob(t *testing.T) {
	job, err := configspace.ParseJobYAML(`
name: riscv-latency
os: linux-riscv
app: redis
metric: latency
maximize: false
iterations: 40
favor:
  runtime: 4
  compile: 1
fixed:
  CONFIG_PREEMPT: "y"
`)
	if err != nil {
		t.Fatal(err)
	}
	sp := SpecFromJob(job)
	if sp.Name != "riscv-latency" || sp.OS != "linux-riscv" || sp.App != "redis" ||
		sp.Metric != "latency" || sp.Iterations != 40 {
		t.Fatalf("spec %+v does not carry the job fields", sp)
	}
	if sp.Favor["runtime"] != 4 || sp.Fixed["CONFIG_PREEMPT"] != "y" {
		t.Fatalf("favor/fixed not carried: %+v", sp)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("job-derived spec invalid: %v", err)
	}
}

// TestSpecVariants runs one small job through every OS model and metric
// the spec language names, plus the favor/fixed space shaping — each
// variant must admit, run, and report.
func TestSpecVariants(t *testing.T) {
	d, err := New(Config{Steppers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	specs := []JobSpec{
		{Tenant: "v", OS: "unikraft", App: "redis", Metric: "memory", Searcher: "random", Seed: 1, Iterations: 6},
		{Tenant: "v", OS: "linux-riscv", App: "npb", Metric: "score", Searcher: "random", Seed: 2, Iterations: 6},
		{Tenant: "v", OS: "riscv", App: "sqlite", Metric: "latency", Searcher: "grid", Seed: 3, Iterations: 6},
		{Tenant: "v", Metric: "performance", Searcher: "random", Seed: 4, Iterations: 6,
			Favor: map[string]float64{"runtime": 4, "compile": 1},
			Fixed: map[string]string{"CONFIG_PREEMPT": "y", "net.core.somaxconn": "1024"}},
	}
	var ids []string
	for _, sp := range specs {
		id, err := d.Submit(sp)
		if err != nil {
			t.Fatalf("Submit(%s/%s): %v", sp.OS, sp.Metric, err)
		}
		ids = append(ids, id)
	}
	waitAll(t, d, ids...)
	for i, id := range ids {
		rep, err := d.ReportJSON(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(string(rep), `"searcher":"`+specs[i].Searcher+`"`) {
			t.Errorf("%s report missing searcher %q: %.120s", id, specs[i].Searcher, rep)
		}
	}

	// Bad fixed parameters are admission errors, not run failures.
	for _, sp := range []JobSpec{
		{Searcher: "random", Iterations: 5, Fixed: map[string]string{"net.core.somaxconn": "not-a-number"}},
		{Searcher: "random", Iterations: 5, Favor: map[string]float64{"quantum": 2}},
		// A surrogate window needs a learned surrogate and a usable size.
		{Searcher: "random", Iterations: 5, SurrogateWindow: 64},
		{Searcher: "bayesian", Iterations: 5, SurrogateWindow: 4},
	} {
		if _, err := d.Submit(sp); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Submit(%+v): got %v, want ErrBadSpec", sp, err)
		}
	}
}

// TestSpecFaultSchedule: a faulted job admits, runs under churn, reports
// retries, and streams the fault/retry/host wire events; malformed or
// unsatisfiable fault specs are admission errors.
func TestSpecFaultSchedule(t *testing.T) {
	d, err := New(Config{Steppers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	id, err := d.Submit(JobSpec{
		Tenant: "f", Searcher: "random", Seed: 5, Iterations: 24,
		Workers: 4, Hosts: 2, Dispatch: "locality",
		FaultSchedule: "down:1@100,up:1@400,buildfail:3#1,retry:3/15/2",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, d, id)
	rep, err := d.ReportJSON(id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), `"retries":`) {
		t.Errorf("faulted report carries no retries: %.200s", rep)
	}
	backlog, _, cancel, err := d.Attach(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	seen := map[string]bool{}
	for _, ev := range backlog {
		seen[ev.Type] = true
	}
	for _, want := range []string{"fault", "retry", "host"} {
		if !seen[want] {
			t.Errorf("event stream missing %q events: saw %v", want, seen)
		}
	}

	for _, sp := range []JobSpec{
		// Unparseable DSL.
		{Searcher: "random", Iterations: 5, FaultSchedule: "meteor:1@2"},
		// Downs a host the fleet does not have.
		{Searcher: "random", Iterations: 5, Workers: 2, Hosts: 2, FaultSchedule: "down:7@10"},
		// Locality placement with the cache disabled.
		{Searcher: "random", Iterations: 5, Workers: 2, Dispatch: "locality", DisableCache: true},
		// Unknown dispatch policy.
		{Searcher: "random", Iterations: 5, Dispatch: "gravity"},
	} {
		if _, err := d.Submit(sp); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Submit(%+v): got %v, want ErrBadSpec", sp, err)
		}
	}
}

// TestSpecSurrogateWindowRuns: a windowed learned-searcher job admits and
// completes — the daemon path of the session-level window option.
func TestSpecSurrogateWindowRuns(t *testing.T) {
	d, err := New(Config{Steppers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	id, err := d.Submit(JobSpec{Tenant: "w", Searcher: "bayesian", Seed: 7, Iterations: 16, SurrogateWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, d, id)
	rep, err := d.ReportJSON(id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), `"searcher":"bayesian"`) {
		t.Errorf("report missing searcher: %.120s", rep)
	}
}
