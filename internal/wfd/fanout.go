// Event fan-out: each job owns a hub that converts the session's typed
// events into compact wire events, retains them in a sequence-numbered
// log, and broadcasts to any number of attached subscribers. The log makes
// attach a replay: a client can connect mid-flight (or after completion),
// ask for events from any sequence number, and follow live from there —
// reconnecting from its last seen sequence after a dropped connection.
package wfd

import (
	"sync"

	"wayfinder/internal/core"
)

// WireEvent is one serialized session event. Type discriminates: "cache",
// "eval", "best", "round", "progress", "done", "fault", "retry", "host",
// "corpus". Fields are a flattened union — consumers switch on Type and
// read the fields it implies.
type WireEvent struct {
	// Seq is the event's position in the job's stream, starting at 0.
	Seq int `json:"seq"`
	// Type is the event kind.
	Type string `json:"type"`

	// Iteration, Config, Metric, Crashed, and Stage describe the
	// observation carried by cache/eval/best events.
	Iteration int     `json:"iteration,omitempty"`
	Config    string  `json:"config,omitempty"`
	Metric    float64 `json:"metric,omitempty"`
	Crashed   bool    `json:"crashed,omitempty"`
	Stage     string  `json:"stage,omitempty"`
	// Source is a cache event's hit kind: reuse, local, or remote.
	Source string `json:"source,omitempty"`

	// Round and Size describe a round event; WallSec its virtual time.
	Round int `json:"round,omitempty"`
	Size  int `json:"size,omitempty"`

	// Observed/Iterations/Crashes/ElapsedSec/Utilization summarize a
	// progress or done event.
	Observed    int     `json:"observed,omitempty"`
	Iterations  int     `json:"iterations,omitempty"`
	Crashes     int     `json:"crashes,omitempty"`
	WallSec     float64 `json:"wall_sec,omitempty"`
	ElapsedSec  float64 `json:"elapsed_sec,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`
	CacheHits   int     `json:"cache_hits,omitempty"`
	BuildsSaved int     `json:"builds_saved,omitempty"`
	// BestMetric/BestConfig carry the running best where the source event
	// has one.
	BestMetric float64 `json:"best_metric,omitempty"`
	BestConfig string  `json:"best_config,omitempty"`

	// Kind, Attempt, Worker, Host, Up, and AtSec describe fault, retry,
	// and host events (Iteration carries the affected iteration).
	Kind    string  `json:"kind,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Worker  int     `json:"worker,omitempty"`
	Host    int     `json:"host,omitempty"`
	Up      bool    `json:"up,omitempty"`
	AtSec   float64 `json:"at_sec,omitempty"`

	// Hash, Seeds, DTM, and Digest describe a corpus event (Kind is
	// "warmstart" or "deposit"): the corpus hash the session saw, the
	// seed configs injected, whether model weights transferred, and the
	// deposited entry's digest.
	Hash   string `json:"hash,omitempty"`
	Seeds  int    `json:"seeds,omitempty"`
	DTM    bool   `json:"dtm,omitempty"`
	Digest string `json:"digest,omitempty"`
}

// wireEvent flattens a typed session event; ok is false for event kinds
// the wire format does not carry.
func wireEvent(ev core.Event) (WireEvent, bool) {
	switch e := ev.(type) {
	case core.CacheEvent:
		return WireEvent{
			Type:      "cache",
			Iteration: e.Result.Iteration,
			Config:    e.Result.ConfigString,
			Source:    e.Source,
		}, true
	case core.EvalDone:
		return WireEvent{
			Type:      "eval",
			Iteration: e.Result.Iteration,
			Config:    e.Result.ConfigString,
			Metric:    e.Result.Metric,
			Crashed:   e.Result.Crashed,
			Stage:     e.Result.Stage,
		}, true
	case core.NewBest:
		return WireEvent{
			Type:      "best",
			Iteration: e.Result.Iteration,
			Config:    e.Result.ConfigString,
			Metric:    e.Result.Metric,
		}, true
	case core.RoundBarrier:
		return WireEvent{
			Type:    "round",
			Round:   e.Round,
			Size:    e.Size,
			WallSec: e.WallSec,
		}, true
	case core.Progress:
		w := WireEvent{
			Type:        "progress",
			Observed:    e.Observed,
			Iterations:  e.Iterations,
			Crashes:     e.Crashes,
			ElapsedSec:  e.ElapsedSec,
			Utilization: e.Utilization,
			CacheHits:   e.CacheHits,
			BuildsSaved: e.BuildsSaved,
		}
		if e.Best != nil {
			w.BestMetric = e.Best.Metric
			w.BestConfig = e.Best.ConfigString
		}
		return w, true
	case core.FaultInjected:
		return WireEvent{
			Type:      "fault",
			Kind:      string(e.Kind),
			Iteration: e.Iter,
			Attempt:   e.Attempt,
			Worker:    e.Worker,
			Host:      e.Host,
			AtSec:     e.AtSec,
		}, true
	case core.RetryScheduled:
		return WireEvent{
			Type:      "retry",
			Iteration: e.Iter,
			Attempt:   e.Attempt,
			AtSec:     e.NotBeforeSec,
		}, true
	case core.HostStateChanged:
		return WireEvent{
			Type:  "host",
			Host:  e.Host,
			Up:    e.Up,
			AtSec: e.AtSec,
		}, true
	case core.CorpusEvent:
		return WireEvent{
			Type:   "corpus",
			Kind:   e.Kind,
			Hash:   e.Hash,
			Seeds:  e.Seeds,
			DTM:    e.DTM,
			Digest: e.Digest,
		}, true
	case core.SessionDone:
		w := WireEvent{
			Type:       "done",
			Observed:   len(e.Report.History),
			Crashes:    e.Report.Crashes,
			ElapsedSec: e.Report.ElapsedSec,
		}
		if e.Report.Best != nil {
			w.BestMetric = e.Report.Best.Metric
			w.BestConfig = e.Report.Best.ConfigString
		}
		return w, true
	}
	return WireEvent{}, false
}

// subChanCap is a subscriber's channel buffer. A subscriber that falls
// this far behind the live stream is disconnected (its channel closed);
// the client re-attaches from its last seen sequence and replays the gap
// from the log.
const subChanCap = 1024

// hub is one job's event log plus live subscriber set.
type hub struct {
	mu     sync.Mutex
	cap    int // log retention bound
	base   int // sequence number of log[0]
	log    []WireEvent
	subs   map[int]chan WireEvent
	nextID int
	closed bool
	// dropped counts subscribers disconnected for falling behind.
	dropped int
}

func newHub(cap int) *hub {
	return &hub{cap: cap, subs: map[int]chan WireEvent{}}
}

// publish appends an event (stamping its sequence number) and broadcasts
// it. Slow subscribers are disconnected rather than blocking the session.
func (h *hub) publish(ev WireEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	ev.Seq = h.base + len(h.log)
	h.log = append(h.log, ev)
	if excess := len(h.log) - h.cap; excess > 0 {
		h.log = append(h.log[:0:0], h.log[excess:]...)
		h.base += excess
	}
	//wfvet:ignore maprange each subscriber's stream is independently ordered under h.mu; cross-subscriber delivery order is unobservable
	for id, ch := range h.subs {
		select {
		case ch <- ev:
		default:
			close(ch)
			delete(h.subs, id)
			h.dropped++
		}
	}
}

// subscribe returns the retained backlog from sequence `from` (clamped to
// what the log still holds) plus a live channel carrying every subsequent
// event, atomically — no event is lost between the two. The channel is
// closed when the job terminates or the subscriber lags too far; cancel
// releases the subscription early.
func (h *hub) subscribe(from int) (backlog []WireEvent, ch <-chan WireEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from < h.base {
		from = h.base
	}
	if idx := from - h.base; idx < len(h.log) {
		backlog = append([]WireEvent(nil), h.log[idx:]...)
	}
	c := make(chan WireEvent, subChanCap)
	if h.closed {
		close(c)
		return backlog, c, func() {}
	}
	id := h.nextID
	h.nextID++
	h.subs[id] = c
	return backlog, c, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if ch, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(ch)
		}
	}
}

// close ends the stream: live subscribers see their channels close after
// the final event. The log stays readable for late attaches.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}

// size reports the number of events published so far.
func (h *hub) size() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.base + len(h.log)
}
