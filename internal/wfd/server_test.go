package wfd

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"testing"
	"time"
)

// startServer serves a daemon over a unix socket in a temp dir and
// returns a client for it.
func startServer(t *testing.T, cfg Config) (*Daemon, *Client) {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "wfd.sock")
	ln, err := Listen(sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewHandler(d)}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		d.Kill()
	})
	return d, NewClient(sock)
}

// TestServerEndToEnd drives the whole API surface over a unix socket:
// submit, list, status, event streaming with replay, report, cancel, and
// the error mappings.
func TestServerEndToEnd(t *testing.T) {
	_, c := startServer(t, Config{Steppers: 1, Quantum: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	id, err := c.Submit(ctx, JobSpec{Tenant: "alice", Searcher: "random", Seed: 1, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if id != "j000001" {
		t.Fatalf("first job id %q", id)
	}

	// Bad specs map to ErrBadSpec over the wire.
	if _, err := c.Submit(ctx, JobSpec{Searcher: "random"}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unbounded spec: got %v, want ErrBadSpec", err)
	}
	if _, err := c.Job(ctx, "j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job: got %v, want ErrNotFound", err)
	}

	// Report with wait blocks until completion and returns canonical
	// bytes matching a direct fetch.
	rep, err := c.Report(ctx, id, true)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Report(ctx, id, false)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep) != string(again) {
		t.Fatal("waited and direct report bytes differ")
	}

	// Stream the finished job's events: full replay, contiguous, done at
	// the end; then resume from the middle.
	var seqs []int
	last := ""
	next, err := c.Events(ctx, id, 0, func(ev WireEvent) bool {
		seqs = append(seqs, ev.Seq)
		last = ev.Type
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) == 0 || last != "done" || next != seqs[len(seqs)-1]+1 {
		t.Fatalf("stream: %d events, last %q, next %d", len(seqs), last, next)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("event %d has seq %d", i, s)
		}
	}
	mid := len(seqs) / 2
	count := 0
	if _, err = c.Events(ctx, id, mid, func(ev WireEvent) bool {
		if count == 0 && ev.Seq != mid {
			t.Fatalf("resume from %d started at %d", mid, ev.Seq)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != len(seqs)-mid {
		t.Fatalf("resumed stream had %d events, want %d", count, len(seqs)-mid)
	}

	st, err := c.Job(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Observed != 30 || st.Tenant != "alice" {
		t.Fatalf("status %+v", st)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != id {
		t.Fatalf("jobs %+v", jobs)
	}

	// Cancel a long-running job over the wire, then confirm its report is
	// a 409/ErrNotDone.
	long, err := c.Submit(ctx, JobSpec{Tenant: "bob", Searcher: "random", Seed: 2, Iterations: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, long); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Job(ctx, long)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Report(ctx, long, false); !errors.Is(err, ErrNotDone) {
		t.Fatalf("canceled report: got %v, want ErrNotDone", err)
	}

	ds, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Done != 1 || ds.Canceled != 1 || len(ds.Tenants) != 2 {
		t.Fatalf("daemon status %+v", ds)
	}
}

// TestServerLiveAttach attaches while the job is still running and
// follows the stream to its end.
func TestServerLiveAttach(t *testing.T) {
	_, c := startServer(t, Config{Steppers: 1, Quantum: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	id, err := c.Submit(ctx, JobSpec{Tenant: "t", Searcher: "random", Seed: 4, Iterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	evals, dones := 0, 0
	if _, err := c.Events(ctx, id, 0, func(ev WireEvent) bool {
		switch ev.Type {
		case "eval":
			evals++
		case "done":
			dones++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if evals != 200 || dones != 1 {
		t.Fatalf("streamed %d evals and %d dones, want 200/1", evals, dones)
	}
}

// TestServerTCP runs the same API over a TCP listener: Listen and
// NewClient both switch transports on the host:port form.
func TestServerTCP(t *testing.T) {
	d, err := New(Config{Steppers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewHandler(d)}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		d.Kill()
	})
	c := NewClient(ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	id, err := c.Submit(ctx, JobSpec{Tenant: "tcp", Searcher: "random", Seed: 1, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Report(ctx, id, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, "j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown over TCP: got %v, want ErrNotFound", err)
	}
}
