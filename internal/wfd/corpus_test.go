package wfd

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wayfinder/internal/corpus"
)

// corpusEvents filters a job's retained wire-event log down to corpus
// events.
func corpusEvents(t *testing.T, d *Daemon, id string) []WireEvent {
	t.Helper()
	backlog, _, cancel, err := d.Attach(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	var out []WireEvent
	for _, ev := range backlog {
		if ev.Type == "corpus" {
			out = append(out, ev)
		}
	}
	return out
}

// TestCorpusSharedAcrossJobs: the daemon accumulates tuning memory. A
// first job deposits its outcome into the shared corpus; a second,
// similar job warm-starts from it (both legs visible as wire events), the
// daemon is crash-killed mid-second-job, and the restarted daemon
// finishes it byte-identically to an uninterrupted run against the same
// one-entry corpus — the warm start pinned to its admission-time query,
// not the corpus that has since grown.
func TestCorpusSharedAcrossJobs(t *testing.T) {
	// The full linux space crashes most early probes, and a deposit needs
	// at least two non-crashed observations — budgets are sized for that.
	source := JobSpec{Tenant: "a", App: "redis", Searcher: "deeptune", Seed: 11, Iterations: 120, Corpus: true}
	target := JobSpec{Tenant: "b", App: "nginx", Searcher: "deeptune", Seed: 12, Iterations: 200, Corpus: true, WarmStartK: 2}

	// Uninterrupted reference: same spec sequence on its own corpus.
	refCorpus := t.TempDir()
	var refReport []byte
	var refHash string
	{
		d, err := New(Config{CorpusDir: refCorpus, Steppers: 1, Quantum: 8})
		if err != nil {
			t.Fatal(err)
		}
		srcID, err := d.Submit(source)
		if err != nil {
			t.Fatal(err)
		}
		waitAll(t, d, srcID)
		refHash = d.Status().CorpusHash
		tgtID, err := d.Submit(target)
		if err != nil {
			t.Fatal(err)
		}
		waitAll(t, d, tgtID)
		if refReport, err = d.ReportJSON(tgtID); err != nil {
			t.Fatal(err)
		}
		d.Kill()
	}

	state, corpusDir := t.TempDir(), t.TempDir()
	cfg := Config{StateDir: state, CorpusDir: corpusDir, Steppers: 1, Quantum: 8, JournalEvery: 16, Logf: t.Logf}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := d1.Status(); st.CorpusEntries != 0 {
		t.Fatalf("fresh corpus holds %d entries", st.CorpusEntries)
	}

	srcID, err := d1.Submit(source)
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, d1, srcID)
	if st := d1.Status(); st.CorpusEntries != 1 || st.CorpusHash != refHash {
		t.Fatalf("after source job: %d entries, hash %s (want 1 entry, hash %s)",
			st.CorpusEntries, st.CorpusHash, refHash)
	}
	evs := corpusEvents(t, d1, srcID)
	if len(evs) != 1 || evs[0].Kind != "deposit" || evs[0].Digest == "" {
		t.Fatalf("source job corpus events: %+v, want one deposit", evs)
	}

	// Admit the warm-started job while dispatch is held: its admission
	// snapshot (carrying the resolved warm start) must hit the journal
	// before any stepping, closing the crash window entirely.
	d1.Hold()
	tgtID, err := d1.Submit(target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(state, "jobs", tgtID, "snap.json")); err != nil {
		t.Fatalf("warm-started job has no admission snapshot: %v", err)
	}
	d1.Release()

	// Kill mid-flight: after progress, before completion.
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := d1.JobStatusByID(tgtID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Observed >= 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("target job never progressed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.Kill()
	if st, _ := d1.JobStatusByID(tgtID); st.State == "done" {
		t.Fatal("target job finished before the kill; nothing was in flight")
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Kill()
	if st := d2.Status(); st.Resumed != 1 {
		t.Fatalf("resumed %d jobs from snapshots, want 1", st.Resumed)
	}
	waitAll(t, d2, tgtID)

	got, err := d2.ReportJSON(tgtID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refReport) {
		t.Error("warm-started report after crash-restart differs from uninterrupted run")
	}
	// The resumed session re-announces its warm start into the fresh hub
	// and deposits at completion — both corpus legs visible post-restart.
	evs = corpusEvents(t, d2, tgtID)
	if len(evs) != 2 {
		t.Fatalf("target job corpus events after restart: %+v, want warmstart+deposit", evs)
	}
	if evs[0].Kind != "warmstart" || evs[0].Seeds != 2 || !evs[0].DTM || evs[0].Hash != refHash {
		t.Fatalf("warmstart event %+v, want 2 seeds + dtm against admission-time hash %s", evs[0], refHash)
	}
	if evs[1].Kind != "deposit" || evs[1].Digest == "" {
		t.Fatalf("deposit event %+v", evs[1])
	}
	if st := d2.Status(); st.CorpusEntries != 2 {
		t.Fatalf("corpus holds %d entries after both jobs, want 2", st.CorpusEntries)
	}

	// The on-disk corpus is the same one a reference daemon grew: memory
	// is deterministic all the way down to the directory bytes.
	a, err := corpus.Open(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := corpus.Open(refCorpus)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("crash-restart corpus hash %s, reference %s", a.Hash(), b.Hash())
	}
}

// TestCorpusAdmission: corpus jobs need a corpus-configured daemon;
// warm_start_k needs corpus and a checkpointable searcher.
func TestCorpusAdmission(t *testing.T) {
	d, err := New(Config{Steppers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	if _, err := d.Submit(JobSpec{Searcher: "random", Seed: 1, Iterations: 10, Corpus: true}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("corpus job on a corpusless daemon: %v, want ErrBadSpec", err)
	}
	if err := (JobSpec{Searcher: "random", Seed: 1, Iterations: 10, WarmStartK: 2}).Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("warm_start_k without corpus: %v, want ErrBadSpec", err)
	}
	if err := (JobSpec{Searcher: "unicorn", Seed: 1, Iterations: 10, Corpus: true, WarmStartK: 2}).Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("warm_start_k on unicorn: %v, want ErrBadSpec", err)
	}
	// Deposit-only unicorn is fine: deposits are idempotent, so even a
	// from-scratch restart re-deposits the same bytes.
	if err := (JobSpec{Searcher: "unicorn", Seed: 1, Iterations: 10, Corpus: true}).Validate(); err != nil {
		t.Fatalf("deposit-only unicorn rejected: %v", err)
	}
}
