package wfd

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// runToCompletion serves the specs on a fresh daemon and returns each
// job's canonical report bytes — the uninterrupted reference.
func runToCompletion(t *testing.T, cfg Config, specs []JobSpec) map[string][]byte {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Kill()
	ids := make([]string, len(specs))
	for i, sp := range specs {
		if ids[i], err = d.Submit(sp); err != nil {
			t.Fatal(err)
		}
	}
	waitAll(t, d, ids...)
	out := map[string][]byte{}
	for _, id := range ids {
		rep, err := d.ReportJSON(id)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = rep
	}
	return out
}

// TestRestartByteIdentical is the crash-restart guarantee, in-process: a
// journaling daemon is killed mid-flight (no graceful snapshot — the
// journal holds only the periodic writes), a second daemon recovers the
// state dir, and every job's canonical final report is byte-identical to
// an uninterrupted run of the same specs.
func TestRestartByteIdentical(t *testing.T) {
	specs := []JobSpec{
		{Tenant: "a", Searcher: "random", Seed: 11, Iterations: 300},
		{Tenant: "a", Searcher: "bayesian", Seed: 12, Iterations: 120, Workers: 3},
		{Tenant: "b", Searcher: "deeptune", Seed: 13, Iterations: 60},
		{Tenant: "b", Searcher: "grid", Seed: 14, Iterations: 200, Workers: 2, Async: true, Staleness: 1},
	}
	reference := runToCompletion(t, Config{Steppers: 2, Quantum: 7}, specs)

	state := t.TempDir()
	cfg := Config{StateDir: state, Steppers: 2, Quantum: 7, JournalEvery: 16, Logf: t.Logf}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		if ids[i], err = d1.Submit(sp); err != nil {
			t.Fatal(err)
		}
	}
	// Let the daemon get partway through, then kill it without journaling
	// (Kill, not Shutdown — the in-process kill -9).
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := d1.Status()
		if st.ServedTotal >= 150 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reached mid-flight: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.Kill()
	if st := d1.Status(); st.Done == len(specs) {
		t.Fatal("all jobs finished before the kill; nothing was in flight")
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Kill()
	st := d2.Status()
	if st.Recovered != len(specs) {
		t.Fatalf("recovered %d jobs, want %d", st.Recovered, len(specs))
	}
	waitAll(t, d2, ids...)
	for i, id := range ids {
		got, err := d2.ReportJSON(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !bytes.Equal(got, reference[id]) {
			t.Errorf("job %d (%s/%s): report after crash-restart differs from uninterrupted run",
				i, specs[i].Searcher, id)
		}
	}
}

// TestRestartResumesFromSnapshot: recovery must actually resume from
// journal snapshots (not silently restart everything), and the resumed
// session continues from the journaled position.
func TestRestartResumesFromSnapshot(t *testing.T) {
	state := t.TempDir()
	cfg := Config{StateDir: state, Steppers: 1, Quantum: 8, JournalEvery: 8, Logf: t.Logf}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d1.Submit(JobSpec{Tenant: "a", Searcher: "random", Seed: 5, Iterations: 100000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, err := d1.JobStatusByID(id); err == nil && st.Observed >= 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.Kill()
	if _, err := os.Stat(filepath.Join(state, "jobs", id, "snap.json")); err != nil {
		t.Fatalf("no snapshot journaled: %v", err)
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Kill()
	if st := d2.Status(); st.Resumed != 1 {
		t.Fatalf("resumed %d jobs from snapshots, want 1", st.Resumed)
	}
	st, err := d2.JobStatusByID(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Observed < 8 {
		t.Fatalf("resumed at %d observations, want the journaled position (>= 8)", st.Observed)
	}
	if err := d2.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitAll(t, d2, id)
}

// TestRestartUnicornFromScratch: a non-checkpointable searcher cannot be
// journaled; after a crash its job restarts from zero and still completes
// with the same bytes as an uninterrupted run.
func TestRestartUnicornFromScratch(t *testing.T) {
	spec := JobSpec{Tenant: "u", Searcher: "unicorn", Seed: 3, Iterations: 36}
	reference := runToCompletion(t, Config{Steppers: 1, Quantum: 4}, []JobSpec{spec})

	state := t.TempDir()
	cfg := Config{StateDir: state, Steppers: 1, Quantum: 4, JournalEvery: 8, Logf: t.Logf}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := d1.JobStatusByID(id); st.Observed >= 12 {
			if st.Journalable {
				t.Fatal("unicorn job reported journalable")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.Kill()
	if _, err := os.Stat(filepath.Join(state, "jobs", id, "snap.json")); err == nil {
		t.Fatal("unicorn job left a snapshot")
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Kill()
	st := d2.Status()
	if st.Recovered != 1 || st.Resumed != 0 {
		t.Fatalf("recovered=%d resumed=%d, want 1/0 (from scratch)", st.Recovered, st.Resumed)
	}
	waitAll(t, d2, id)
	got, err := d2.ReportJSON(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reference[id]) {
		t.Error("unicorn report after from-scratch restart differs from uninterrupted run")
	}
}

// TestShutdownJournalsEverything: a graceful shutdown snapshots every
// active job even between JournalEvery boundaries, so the next daemon
// resumes at the exact stop position.
func TestShutdownJournalsEverything(t *testing.T) {
	state := t.TempDir()
	// JournalEvery is enormous: only the shutdown path can write snapshots.
	cfg := Config{StateDir: state, Steppers: 1, Quantum: 8, JournalEvery: 1 << 30, Logf: t.Logf}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d1.Submit(JobSpec{Tenant: "a", Searcher: "bayesian", Seed: 2, Iterations: 100000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := d1.JobStatusByID(id); st.Observed >= 24 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.Shutdown()
	stopAt, err := d1.JobStatusByID(id)
	if err != nil {
		t.Fatal(err)
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Kill()
	st, err := d2.JobStatusByID(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Observed != stopAt.Observed {
		t.Fatalf("resumed at %d observations, want the shutdown position %d", st.Observed, stopAt.Observed)
	}
	if err := d2.Cancel(id); err != nil {
		t.Fatal(err)
	}
	waitAll(t, d2, id)
}

// TestRecoverTerminalJobs: a restarted daemon re-registers finished and
// canceled jobs from their journals — reports stay fetchable with the
// exact prior bytes, terminal states survive, and tenant accounting is
// seeded from the journal.
func TestRecoverTerminalJobs(t *testing.T) {
	state := t.TempDir()
	cfg := Config{StateDir: state, Steppers: 1, Quantum: 4, JournalEvery: 8}
	d1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	doneID, err := d1.Submit(JobSpec{Tenant: "a", Searcher: "random", Seed: 1, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	waitAll(t, d1, doneID)
	ref, err := d1.ReportJSON(doneID)
	if err != nil {
		t.Fatal(err)
	}
	cancelID, err := d1.Submit(JobSpec{Tenant: "a", Searcher: "random", Seed: 2, Iterations: 100000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, _ := d1.JobStatusByID(cancelID); st.Observed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d1.Cancel(cancelID); err != nil {
		t.Fatal(err)
	}
	waitAll(t, d1, cancelID)
	canceledAt, err := d1.JobStatusByID(cancelID)
	if err != nil {
		t.Fatal(err)
	}
	d1.Kill()

	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Kill()
	st := d2.Status()
	if st.Recovered != 2 || st.Resumed != 0 {
		t.Fatalf("recovered=%d resumed=%d, want 2/0 (both terminal)", st.Recovered, st.Resumed)
	}
	got, err := d2.ReportJSON(doneID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Error("recovered done job's report differs from the original")
	}
	ds, err := d2.JobStatusByID(doneID)
	if err != nil {
		t.Fatal(err)
	}
	if ds.State != "done" || ds.Observed != 30 || ds.BestConfig == "" {
		t.Fatalf("recovered done status %+v", ds)
	}
	cs, err := d2.JobStatusByID(cancelID)
	if err != nil {
		t.Fatal(err)
	}
	if cs.State != "canceled" || cs.Observed != canceledAt.Observed {
		t.Fatalf("recovered canceled status %+v, want canceled at %d", cs, canceledAt.Observed)
	}
	// Terminal jobs hold no active slots or committed budget, but their
	// observations count as served tenant service.
	tenants := d2.Status().Tenants
	if len(tenants) != 1 || tenants[0].Active != 0 || tenants[0].Committed != 0 ||
		tenants[0].Service != 30+canceledAt.Observed {
		t.Fatalf("tenant accounting after recovery: %+v", tenants)
	}
	// A recovered terminal job's event stream is closed (nothing replays —
	// the event log is not journaled) but attaching must not hang.
	backlog, live, cancel, err := d2.Attach(doneID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if len(backlog) != 0 {
		t.Fatalf("recovered job replayed %d events, want none", len(backlog))
	}
	if _, ok := <-live; ok {
		t.Fatal("recovered terminal job's live channel should be closed")
	}
}
