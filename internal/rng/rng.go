// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout Wayfinder.
//
// Reproducibility is a first-class requirement of the benchmarking platform
// (§3.1 of the paper): every search session, simulator instance, and
// synthetic workload is seeded explicitly so that experiments can be re-run
// bit-for-bit. The generator is xoshiro256**, seeded via splitmix64, which
// gives high-quality 64-bit streams with cheap splitting: deriving an
// independent child stream for a subsystem costs four multiplications.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; derive per-goroutine generators with Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64 so that nearby
// seeds still produce decorrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// WorkerSeed derives the seed for a parallel worker's private stream from
// the session seed. Worker 0 returns the session seed unchanged, so a
// one-worker pool reproduces the sequential stream bit-for-bit; higher
// workers apply a splitmix64 finalizer to seed^workerID so adjacent worker
// IDs still yield decorrelated streams.
func WorkerSeed(seed uint64, worker int) uint64 {
	if worker <= 0 {
		return seed
	}
	z := seed ^ (uint64(worker) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child generator. The parent advances, so
// successive Split calls yield distinct children.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// SplitLabeled derives a child generator whose stream depends on both the
// parent state and a label, useful for attaching stable sub-streams to named
// subsystems regardless of initialization order.
func (r *RNG) SplitLabeled(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(r.Uint64() ^ h)
}

// State returns the generator's internal xoshiro256** state, for
// checkpointing. Restoring it with SetState reproduces the stream exactly
// from the captured position.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with one previously
// captured by State. The all-zero state is invalid for xoshiro and is
// remapped the same way New remaps it.
func (r *RNG) SetState(s [4]uint64) {
	r.s = s
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability 0.5.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Chance returns true with probability p (clamped to [0,1]).
func (r *RNG) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal deviate with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// ExpFloat64 returns an exponential deviate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles a slice of ints in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random index weighted by the given
// non-negative weights. If all weights are zero it falls back to uniform.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
