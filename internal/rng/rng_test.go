package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	var x uint64
	for i := 0; i < 10; i++ {
		x |= r.Uint64()
	}
	if x == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		if n > 1<<30 {
			n %= 1 << 30
			n++
		}
		r := New(seed)
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(3)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(5)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %v, want ~10", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams overlap in %d positions", same)
	}
}

func TestSplitLabeledStable(t *testing.T) {
	a := New(13).SplitLabeled("net")
	b := New(13).SplitLabeled("net")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("labeled splits with same label diverged")
		}
	}
	c := New(13).SplitLabeled("net")
	d := New(13).SplitLabeled("mm")
	if c.Uint64() == d.Uint64() {
		t.Fatal("different labels produced identical first value")
	}
}

func TestChance(t *testing.T) {
	r := New(21)
	if r.Chance(0) {
		t.Fatal("Chance(0) returned true")
	}
	if !r.Chance(1) {
		t.Fatal("Chance(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Chance(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Chance(0.25) hit rate = %v", frac)
	}
}

func TestChoiceWeights(t *testing.T) {
	r := New(17)
	counts := make([]int, 3)
	const n = 90000
	for i := 0; i < n; i++ {
		counts[r.Choice([]float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight bucket selected %d times", counts[2])
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-2) > 0.15 {
		t.Fatalf("weight ratio = %v, want ~2", ratio)
	}
}

func TestChoiceAllZeroFallsBackToUniform(t *testing.T) {
	r := New(19)
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[r.Choice([]float64{0, 0, 0})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("uniform fallback covered %d of 3 buckets", len(seen))
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := New(23)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatal("negative exponential deviate")
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5}
	r.ShuffleInts(xs)
	sum := 0
	for _, x := range xs {
		sum += x
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func TestWorkerSeedZeroIsIdentity(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		if got := WorkerSeed(seed, 0); got != seed {
			t.Fatalf("WorkerSeed(%d, 0) = %d: worker 0 must keep the session seed", seed, got)
		}
	}
}

func TestWorkerSeedStreamsDecorrelated(t *testing.T) {
	// Distinct workers must get distinct seeds and decorrelated streams,
	// deterministically.
	seen := map[uint64]int{}
	for w := 0; w < 64; w++ {
		s := WorkerSeed(7, w)
		if prev, dup := seen[s]; dup {
			t.Fatalf("workers %d and %d collide on seed %d", prev, w, s)
		}
		seen[s] = w
		if again := WorkerSeed(7, w); again != s {
			t.Fatal("WorkerSeed is not deterministic")
		}
	}
	// Adjacent workers' first draws should differ (splitmix64 finalizer).
	a, b := New(WorkerSeed(7, 1)), New(WorkerSeed(7, 2))
	if a.Uint64() == b.Uint64() {
		t.Fatal("adjacent worker streams start identically")
	}
}
