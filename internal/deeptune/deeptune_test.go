package deeptune

import (
	"math"
	"testing"

	"wayfinder/internal/configspace"
	"wayfinder/internal/rng"
)

// synthProblem builds a labelled dataset over dim features: performance
// depends on features 0 and 1, crashes on feature 2 being high.
func synthProblem(n, dim int, seed uint64) (xs [][]float64, ys []float64, crashed []bool) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for d := range x {
			x[d] = r.Float64()
		}
		cr := x[2] > 0.8 && r.Chance(0.9)
		y := 100 + 40*x[0] - 25*x[1] + r.Normal(0, 1)
		if cr {
			y = 0
		}
		xs = append(xs, x)
		ys = append(ys, y)
		crashed = append(crashed, cr)
	}
	return
}

func trainedDTM(t *testing.T, n int) (*DTM, [][]float64, []float64, []bool) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Epochs = 40
	dtm := New(8, cfg)
	xs, ys, crashed := synthProblem(n, 8, 1)
	if err := dtm.Update(xs, ys, crashed); err != nil {
		t.Fatal(err)
	}
	return dtm, xs, ys, crashed
}

func TestUpdateValidation(t *testing.T) {
	dtm := New(4, DefaultConfig())
	if err := dtm.Update([][]float64{{1, 2, 3, 4}}, []float64{1, 2}, []bool{false}); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	if err := dtm.Update(nil, nil, nil); err != nil {
		t.Fatal("empty update should be a no-op")
	}
	if dtm.Trained() != 0 {
		t.Fatal("empty update should not count as training")
	}
}

func TestCrashPrediction(t *testing.T) {
	dtm, _, _, _ := trainedDTM(t, 400)
	// Configurations deep in the crash region vs far from it.
	crashy := []float64{0.5, 0.5, 0.95, 0.5, 0.5, 0.5, 0.5, 0.5}
	safe := []float64{0.5, 0.5, 0.1, 0.5, 0.5, 0.5, 0.5, 0.5}
	pc := dtm.Predict(crashy).CrashProb
	ps := dtm.Predict(safe).CrashProb
	if pc <= ps {
		t.Fatalf("crash-region prob %v should exceed safe-region %v", pc, ps)
	}
	if pc < 0.5 {
		t.Fatalf("crash-region prob = %v, want >0.5", pc)
	}
	if ps > 0.4 {
		t.Fatalf("safe-region prob = %v, want <0.4", ps)
	}
}

func TestPerformancePrediction(t *testing.T) {
	dtm, _, _, _ := trainedDTM(t, 400)
	hi := []float64{0.95, 0.05, 0.1, 0.5, 0.5, 0.5, 0.5, 0.5} // y ≈ 136
	lo := []float64{0.05, 0.95, 0.1, 0.5, 0.5, 0.5, 0.5, 0.5} // y ≈ 78
	ph := dtm.Predict(hi).Perf
	pl := dtm.Predict(lo).Perf
	if ph <= pl {
		t.Fatalf("predicted perf ordering wrong: hi=%v lo=%v", ph, pl)
	}
	if math.Abs(ph-136) > 25 || math.Abs(pl-78) > 25 {
		t.Fatalf("predictions too far off: hi=%v (want ~136) lo=%v (want ~78)", ph, pl)
	}
}

func TestUncertaintyHighForOutliers(t *testing.T) {
	dtm, xs, _, _ := trainedDTM(t, 300)
	inlier := dtm.Predict(xs[0]).Uncertainty
	outlier := make([]float64, 8)
	for i := range outlier {
		outlier[i] = 50 // far outside [0,1] training cube
	}
	uOut := dtm.Predict(outlier).Uncertainty
	if uOut <= inlier {
		t.Fatalf("outlier uncertainty %v should exceed inlier %v", uOut, inlier)
	}
	if uOut < 0.9 {
		t.Fatalf("outlier uncertainty = %v, want ≈1", uOut)
	}
}

func TestSigmaPositive(t *testing.T) {
	dtm, xs, _, _ := trainedDTM(t, 200)
	for _, x := range xs[:20] {
		if s := dtm.Predict(x).Sigma; s <= 0 || math.IsNaN(s) {
			t.Fatalf("sigma = %v", s)
		}
	}
}

func TestIncrementalUpdateCostFlat(t *testing.T) {
	// The defining contrast with GP/causal baselines: per-update cost is
	// bounded by epochs × history, and with fixed epochs the cost per
	// sample stays flat — no superlinear blow-up. We verify update works
	// repeatedly and Trained() counts.
	cfg := DefaultConfig()
	cfg.Epochs = 2
	dtm := New(8, cfg)
	xs, ys, crashed := synthProblem(100, 8, 2)
	for i := 10; i <= 100; i += 10 {
		if err := dtm.Update(xs[:i], ys[:i], crashed[:i]); err != nil {
			t.Fatal(err)
		}
	}
	if dtm.Trained() != 10 {
		t.Fatalf("Trained = %d, want 10", dtm.Trained())
	}
	if dtm.LastUpdateCost() <= 0 {
		t.Fatal("update cost not recorded")
	}
}

func TestDissimilarity(t *testing.T) {
	x := []float64{0.5, 0.5}
	if d := Dissimilarity(x, nil); d != 1 {
		t.Fatalf("empty-history dissimilarity = %v, want 1", d)
	}
	same := Dissimilarity(x, [][]float64{{0.5, 0.5}})
	far := Dissimilarity(x, [][]float64{{10, -10}})
	if same != 0 {
		t.Fatalf("identical-point dissimilarity = %v, want 0", same)
	}
	if far <= same || far > 1 {
		t.Fatalf("far dissimilarity = %v", far)
	}
	// Nearest point governs.
	mixed := Dissimilarity(x, [][]float64{{10, -10}, {0.5, 0.5}})
	if mixed != 0 {
		t.Fatalf("nearest-point rule broken: %v", mixed)
	}
}

func TestScoreBlendsAlphaCorrectly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha = 1 // pure dissimilarity
	dtm := New(4, cfg)
	xs, ys, crashed := synthProblem(50, 4, 3)
	if err := dtm.Update(xs, ys, crashed); err != nil {
		t.Fatal(err)
	}
	explored := [][]float64{{0.5, 0.5, 0.5, 0.5}}
	near := dtm.Score([]float64{0.5, 0.5, 0.5, 0.5}, explored)
	far := dtm.Score([]float64{30, 30, 30, 30}, explored)
	if far <= near {
		t.Fatalf("alpha=1 score should follow dissimilarity: near=%v far=%v", near, far)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dtm, xs, _, _ := trainedDTM(t, 200)
	snap, err := dtm.Snapshot(map[string]string{"app": "redis"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta["app"] != "redis" || snap.Meta["dim"] != "8" {
		t.Fatalf("meta = %v", snap.Meta)
	}
	fresh := New(8, DefaultConfig())
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Restored model needs the z-scorer refit before predictions match;
	// feed it one update with the same data distribution.
	// Weight-level equality is the contract:
	namesA, paramsA := dtm.named()
	_, paramsB := fresh.named()
	for i := range paramsA {
		for j := range paramsA[i].W {
			if paramsA[i].W[j] != paramsB[i].W[j] {
				t.Fatalf("tensor %s differs after restore", namesA[i])
			}
		}
	}
	_ = xs
}

func TestRestoreDimensionMismatch(t *testing.T) {
	dtm := New(8, DefaultConfig())
	snap, err := dtm.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	other := New(16, DefaultConfig())
	if err := other.Restore(snap); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}

func TestTransferLearningWarmStart(t *testing.T) {
	// A model pre-trained on the problem should predict crashes on fresh
	// samples better than an untrained model (the §3.3 mechanism).
	cfg := DefaultConfig()
	cfg.Epochs = 40
	source := New(8, cfg)
	xs, ys, crashed := synthProblem(400, 8, 4)
	if err := source.Update(xs, ys, crashed); err != nil {
		t.Fatal(err)
	}
	snap, err := source.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(8, cfg)
	if err := warm.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Prime normalization with a tiny related-history update.
	xs2, ys2, crashed2 := synthProblem(20, 8, 5)
	cfgWarm := cfg
	cfgWarm.Epochs = 1
	_ = cfgWarm
	if err := warm.Update(xs2, ys2, crashed2); err != nil {
		t.Fatal(err)
	}
	cold := New(8, cfg)
	if err := cold.Update(xs2, ys2, crashed2); err != nil {
		t.Fatal(err)
	}
	// Evaluate crash classification on held-out data.
	testXs, _, testCrashed := synthProblem(300, 8, 6)
	accOf := func(m *DTM) float64 {
		correct := 0
		for i, x := range testXs {
			if (m.Predict(x).CrashProb > 0.5) == testCrashed[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(testXs))
	}
	warmAcc, coldAcc := accOf(warm), accOf(cold)
	if warmAcc < coldAcc-0.02 {
		t.Fatalf("transfer learning hurt: warm=%v cold=%v", warmAcc, coldAcc)
	}
	if warmAcc < 0.8 {
		t.Fatalf("warm accuracy = %v, want >0.8", warmAcc)
	}
}

// selectorSpace builds a small space with one impactful int, one crashy
// int, and filler.
func selectorSpace() *configspace.Space {
	s := configspace.NewSpace("sel")
	s.MustAdd(&configspace.Param{Name: "good", Type: configspace.Int, Class: configspace.Runtime,
		Min: 0, Max: 100, Default: configspace.IntValue(10)})
	s.MustAdd(&configspace.Param{Name: "danger", Type: configspace.Int, Class: configspace.Runtime,
		Min: 0, Max: 100, Default: configspace.IntValue(10)})
	for i := 0; i < 6; i++ {
		s.MustAdd(&configspace.Param{Name: string(rune('a' + i)), Type: configspace.Int,
			Class: configspace.Runtime, Min: 0, Max: 100, Default: configspace.IntValue(50)})
	}
	return s
}

func TestSelectorEndToEnd(t *testing.T) {
	// DeepTune should outperform pure random on a toy objective with a
	// crash region, within a modest budget.
	space := selectorSpace()
	cfg := DefaultConfig()
	cfg.Epochs = 4
	cfg.Seed = 9
	sel := NewSelector(space, true, cfg)
	enc := sel.Encoder()
	r := rng.New(10)

	objective := func(c *configspace.Config) (float64, bool) {
		g := float64(c.GetInt("good", 0))
		d := float64(c.GetInt("danger", 0))
		crashed := d > 80 && r.Chance(0.9)
		return 50 + g, crashed
	}

	var xs [][]float64
	var ys []float64
	var crashes []bool
	best := 0.0
	crashCount := 0
	const iters = 60
	for i := 0; i < iters; i++ {
		var c *configspace.Config
		if i < 10 {
			c = space.Random(r)
		} else {
			c = sel.Propose()
		}
		y, crashed := objective(c)
		if crashed {
			crashCount++
			y = 0
		} else if y > best {
			best = y
		}
		x := enc.Encode(c)
		xs = append(xs, x)
		ys = append(ys, y)
		crashes = append(crashes, crashed)
		if err := sel.Observe(c, x, y, crashed, xs, ys, crashes); err != nil {
			t.Fatal(err)
		}
	}
	if best < 130 {
		t.Fatalf("selector found best=%v, want near 150", best)
	}
	// Crash avoidance: later proposals should rarely hit the danger zone.
	lateCrashes := 0
	for i := 0; i < 30; i++ {
		c := sel.Propose()
		if c.GetInt("danger", 0) > 80 {
			lateCrashes++
		}
	}
	if lateCrashes > 12 {
		t.Fatalf("selector still proposing danger-zone configs: %d/30", lateCrashes)
	}
}

func TestSelectorColdStartIsRandomish(t *testing.T) {
	space := selectorSpace()
	sel := NewSelector(space, true, DefaultConfig())
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		seen[sel.Propose().Hash()] = true
	}
	if len(seen) < 5 {
		t.Fatalf("cold-start proposals not diverse: %d unique of 10", len(seen))
	}
}

func TestPredictBatchBitIdentical(t *testing.T) {
	dtm, _, _, _ := trainedDTM(t, 200)
	r := rng.New(21)
	cands := make([][]float64, 96)
	for i := range cands {
		x := make([]float64, 8)
		for d := range x {
			x[d] = 4*r.Float64() - 1 // includes out-of-distribution points
		}
		cands[i] = x
	}
	batch := make([]Prediction, len(cands))
	dtm.PredictBatch(cands, batch)
	for i, x := range cands {
		want := dtm.Predict(x)
		got := batch[i]
		if math.Float64bits(got.CrashProb) != math.Float64bits(want.CrashProb) ||
			math.Float64bits(got.Perf) != math.Float64bits(want.Perf) ||
			math.Float64bits(got.Sigma) != math.Float64bits(want.Sigma) ||
			math.Float64bits(got.Uncertainty) != math.Float64bits(want.Uncertainty) {
			t.Fatalf("cand %d: batch %+v != scalar %+v", i, got, want)
		}
	}
}

func TestPredictBatchUntrainedModel(t *testing.T) {
	// Before the first Update there is no z-scorer and no target stats; the
	// batch path must mirror the scalar path (raw features, sd = 1).
	dtm := New(4, DefaultConfig())
	xs := [][]float64{{0.1, 0.2, 0.3, 0.4}, {0.9, 0.8, 0.7, 0.6}}
	out := make([]Prediction, len(xs))
	dtm.PredictBatch(xs, out)
	for i, x := range xs {
		want := dtm.Predict(x)
		if math.Float64bits(out[i].Perf) != math.Float64bits(want.Perf) ||
			math.Float64bits(out[i].CrashProb) != math.Float64bits(want.CrashProb) {
			t.Fatalf("cand %d: untrained batch %+v != scalar %+v", i, out[i], want)
		}
	}
	dtm.PredictBatch(nil, nil) // empty batch is a no-op, not a panic
}

func TestPredictBatchNoAllocsSteadyState(t *testing.T) {
	dtm, xs, _, _ := trainedDTM(t, 100)
	out := make([]Prediction, len(xs))
	dtm.PredictBatch(xs, out) // grow scratch
	allocs := testing.AllocsPerRun(50, func() {
		dtm.PredictBatch(xs, out)
	})
	if allocs != 0 {
		t.Fatalf("steady-state PredictBatch allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkDTMUpdate(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Epochs = 4
	xs, ys, crashed := synthProblem(250, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtm := New(64, cfg)
		if err := dtm.Update(xs, ys, crashed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTMPredict(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Epochs = 2
	dtm := New(64, cfg)
	xs, ys, crashed := synthProblem(100, 64, 1)
	if err := dtm.Update(xs, ys, crashed); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtm.Predict(xs[i%len(xs)])
	}
}
