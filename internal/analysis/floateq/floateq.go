// Package floateq flags == and != on floating-point operands.
// Accumulated rounding makes exact float equality a latent bug: two
// mathematically-equal values computed along different paths (a resumed
// session vs an uninterrupted one, an incremental Cholesky extension vs
// a full refit) can differ in the last ulp, and an equality branch on
// them forks the session. Where exact comparison is genuinely right —
// comparing against an exact sentinel like 0 that is only ever assigned,
// not computed — the site says so with //wfvet:ignore floateq <reason>.
//
// Skipped on purpose: *_test.go files (asserting exact reproducibility
// is the point of the determinism tests), constant-folded comparisons
// (both operands untyped constants), and self-comparison x != x (the
// portable NaN check).
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"wayfinder/internal/analysis"
)

// New returns the floateq analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "floateq",
		Doc:  "flag ==/!= on floating-point operands outside tests; compare with a tolerance instead",
		Run:  run,
	}
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if pass.IsTestFile(bin.Pos()) {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			if isConst(pass, bin.X) && isConst(pass, bin.Y) {
				return true // constant-folded, exact by definition
			}
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true // x != x: the portable NaN check
			}
			pass.Reportf(bin.OpPos,
				"floating-point %s comparison; use a tolerance (or math.Abs) or annotate //wfvet:ignore floateq <reason>",
				bin.Op)
			return true
		})
	}
}

// isFloat reports whether a type's underlying kind is floating point or
// complex.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isConst reports whether the checker evaluated e to a constant.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
