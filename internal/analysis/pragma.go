// The shared suppression pragma: a deliberate invariant violation is
// annotated in source as
//
//	//wfvet:ignore <analyzer> <reason>
//
// and the reason is mandatory — a pragma is a reviewed decision, not an
// off switch, so it must say why the site is safe. A pragma suppresses
// findings of the named analyzer on its own line; a pragma that stands
// alone on a line suppresses the line below it instead (stacking: several
// standalone pragmas above one statement each suppress that statement for
// their analyzer).
package analysis

import (
	"go/token"
	"strings"
)

// pragmaPrefix introduces a suppression comment. The comment must start
// exactly with this (no space between // and wfvet, mirroring
// //go:directives).
const pragmaPrefix = "//wfvet:ignore"

// pragma is one parsed suppression.
type pragma struct {
	analyzer   string
	standalone bool // nothing but whitespace precedes it on its line
}

// pragmaIndex maps file → line → suppressions declared on that line.
type pragmaIndex struct {
	byLine map[string]map[int][]pragma
}

// parsePragmas scans a package unit's comments for //wfvet:ignore
// directives. Malformed directives — a missing analyzer name, an analyzer
// no registered check matches, or a missing reason — are returned as
// findings under the reserved analyzer name "pragma".
func parsePragmas(pkg *Package, known map[string]bool) (*pragmaIndex, []Finding) {
	idx := &pragmaIndex{byLine: make(map[string]map[int][]pragma)}
	var bad []Finding
	report := func(pos token.Position, msg string) {
		bad = append(bad, Finding{Pos: pos, Analyzer: "pragma", Message: msg})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, pragmaPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, pragmaPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //wfvet:ignoreXXX — not the directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "wfvet:ignore needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					report(pos, "wfvet:ignore names unknown analyzer "+name)
					continue
				}
				if len(fields) < 2 {
					report(pos, "wfvet:ignore "+name+" needs a reason")
					continue
				}
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]pragma)
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], pragma{
					analyzer:   name,
					standalone: pos.Column == 1 || onlySpaceBefore(pkg, c.Pos(), pos),
				})
			}
		}
	}
	return idx, bad
}

// onlySpaceBefore reports whether only whitespace precedes the comment on
// its line, i.e. the pragma stands alone. The file source is consulted
// through the loader's retained file contents.
func onlySpaceBefore(pkg *Package, pos token.Pos, p token.Position) bool {
	src, ok := pkg.Sources[p.Filename]
	if !ok {
		return false
	}
	start := int(pos) - pkg.Fset.File(pos).Base() // byte offset in file
	lineStart := start - (p.Column - 1)
	if lineStart < 0 || start > len(src) {
		return false
	}
	return strings.TrimSpace(src[lineStart:start]) == ""
}

// suppressed reports whether a finding of the named analyzer at pos is
// covered by a pragma: one on the finding's own line, or a standalone one
// on an immediately preceding line (walking up through a stack of
// standalone pragma lines).
func (idx *pragmaIndex) suppressed(analyzer string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, pr := range lines[pos.Line] {
		if pr.analyzer == analyzer && !pr.standalone {
			return true
		}
	}
	// Walk up through standalone pragma lines directly above the finding.
	for line := pos.Line - 1; line > 0; line-- {
		prs := lines[line]
		if len(prs) == 0 {
			return false
		}
		allStandalone := true
		for _, pr := range prs {
			if !pr.standalone {
				allStandalone = false
				continue
			}
			if pr.analyzer == analyzer {
				return true
			}
		}
		if !allStandalone {
			return false
		}
	}
	return false
}
