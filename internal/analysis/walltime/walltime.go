// Package walltime forbids wall-clock reads outside an explicit
// allowlist. Every session is meant to be a pure function of (seed,
// workers, staleness, hosts): virtual time lives in internal/vm's Clock
// and WallClock, so a stray time.Now or time.Sleep on an evaluation,
// report, or snapshot path makes reports non-reproducible in a way no
// test reliably catches. Real wall-clock use is legitimate only where
// the code genuinely interfaces with the outside world (the wfd daemon's
// I/O deadlines and uptime accounting, the benchmark harnesses that
// measure real ns/op) — those packages are allowlisted in the driver —
// or where a site deliberately measures real compute cost and says so
// with a //wfvet:ignore walltime pragma (the searchers' decision-cost
// stopwatches).
//
// Test files are skipped: watchdog timeouts and polling deadlines in
// tests are real time by nature and do not feed any deterministic
// output.
package walltime

import (
	"go/ast"

	"wayfinder/internal/analysis"
)

// forbidden is the set of time-package functions that read or wait on
// the wall clock. Types (time.Duration, time.Time) and pure conversions
// (time.Unix, d.Seconds()) are fine — only entry points that sample or
// sleep on real time are banned.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// New returns the walltime analyzer. Packages whose import path is in
// allowed (exactly, or as a path prefix of the unit — external test
// units of an allowed package are covered) may use the wall clock
// freely.
func New(allowed []string) *analysis.Analyzer {
	allowSet := make(map[string]bool, len(allowed))
	for _, p := range allowed {
		allowSet[p] = true
	}
	return &analysis.Analyzer{
		Name: "walltime",
		Doc:  "forbid wall-clock reads (time.Now/Since/Sleep/Tick/...) outside the allowlist; virtual time lives in internal/vm",
		Run: func(pass *analysis.Pass) {
			pkgPath := pass.Pkg.PkgPath
			if allowSet[pkgPath] || allowSet[basePath(pkgPath)] {
				return
			}
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || !forbidden[sel.Sel.Name] {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok || pass.PkgNameOf(id) != "time" {
						return true
					}
					if pass.IsTestFile(sel.Pos()) {
						return true
					}
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock outside the allowlist; use the session's virtual clock (internal/vm) or annotate //wfvet:ignore walltime <reason>",
						sel.Sel.Name)
					return true
				})
			}
		},
	}
}

// basePath strips the external-test suffix so foo's allowlisting covers
// foo.test.
func basePath(pkgPath string) string {
	const suffix = ".test"
	if len(pkgPath) > len(suffix) && pkgPath[len(pkgPath)-len(suffix):] == suffix {
		return pkgPath[:len(pkgPath)-len(suffix)]
	}
	return pkgPath
}
