// Package maprange flags `range` over a map on any path whose effect
// depends on iteration order. Go randomizes map iteration on purpose, so
// a loop body that emits output, writes JSON, feeds a hash, appends to a
// slice that outlives the loop, or sends on a channel produces a
// different artifact on every run — exactly the class of bug that breaks
// this repository's byte-reproducible reports, canonical snapshots, and
// stable test failure messages. Order-insensitive bodies (sums, counts,
// lookups, building another map) are fine and stay silent.
//
// The canonical fix — collect the keys, sort them, range over the sorted
// slice — is recognized: a loop whose only escaping effect is appending
// to a slice that is subsequently passed to a sort.* or slices.Sort*
// call in the same function is not flagged. Deliberately order-free
// emission (e.g. feeding an order-independent accumulator) is annotated
// with //wfvet:ignore maprange <reason>.
//
// Test files are checked too: a map-ordered t.Fatalf means the failure
// message differs run to run, which makes CI failures needlessly hard to
// diff.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"wayfinder/internal/analysis"
)

// New returns the maprange analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "maprange",
		Doc:  "flag range over a map whose body emits, escapes, or hashes in iteration order; sort keys first",
		Run:  run,
	}
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Pkg.Files {
		// Walk function by function so append-then-sort exoneration can
		// see the statements that follow the loop.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
}

// checkFunc examines every map-range statement directly inside one
// function body (nested function literals are visited by run separately,
// with their own sort-exoneration scope).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false // handled in its own scope
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
			return true
		}
		if sink := findSink(pass, rng, body); sink != "" {
			pass.Reportf(rng.Pos(),
				"range over map %s %s in iteration order; sort the keys first or annotate //wfvet:ignore maprange <reason>",
				exprString(rng.X), sink)
		}
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sinkHit is one order-dependent effect found in a loop body.
type sinkHit struct {
	pos  token.Pos
	desc string
	// appendTo is set for append sinks: the escaping slice's object,
	// which a later sort call can exonerate.
	appendTo types.Object
}

// findSink scans the loop body for order-dependent effects and returns a
// description of the first surviving one ("" when the body is order-
// insensitive). Append sinks are dropped when the target slice is sorted
// after the loop.
func findSink(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) string {
	var hits []sinkHit
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			if hit, ok := callSink(pass, nn, rng); ok {
				hits = append(hits, hit)
			}
		case *ast.SendStmt:
			hits = append(hits, sinkHit{pos: nn.Pos(), desc: "sends on a channel"})
		}
		return true
	})
	for _, h := range hits {
		if h.appendTo != nil && sortedAfter(pass, fnBody, rng, h.appendTo) {
			continue
		}
		return h.desc
	}
	return ""
}

// callSink classifies one call inside the loop body.
func callSink(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt) (sinkHit, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "print", "println":
			if _, ok := pass.Pkg.Info.Uses[fun].(*types.Builtin); ok {
				return sinkHit{pos: call.Pos(), desc: "prints"}, true
			}
		case "append":
			if _, ok := pass.Pkg.Info.Uses[fun].(*types.Builtin); !ok {
				return sinkHit{}, false
			}
			if len(call.Args) == 0 {
				return sinkHit{}, false
			}
			if obj := rootObject(pass, call.Args[0]); obj != nil && declaredOutside(obj, rng) {
				return sinkHit{
					pos:      call.Pos(),
					desc:     "appends to a slice that escapes the loop",
					appendTo: obj,
				}, true
			}
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// Package-level sinks: fmt/log emitters, json/binary encoders.
		if id, ok := fun.X.(*ast.Ident); ok {
			switch pass.PkgNameOf(id) {
			case "fmt":
				if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
					strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Append") ||
					name == "Errorf" {
					return sinkHit{pos: call.Pos(), desc: "emits via fmt." + name}, true
				}
			case "log", "log/slog":
				return sinkHit{pos: call.Pos(), desc: "logs via log." + name}, true
			case "encoding/json":
				if strings.HasPrefix(name, "Marshal") {
					return sinkHit{pos: call.Pos(), desc: "writes JSON via json." + name}, true
				}
			case "encoding/binary":
				if name == "Write" || strings.HasPrefix(name, "Append") {
					return sinkHit{pos: call.Pos(), desc: "writes binary via binary." + name}, true
				}
			}
			// Not a package selector sink; fall through to method checks
			// below (id could also be a variable receiver).
		}
		// Method sinks: writers, hashers, encoders, testing emitters.
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "Sum", "Sum64", "Sum32":
			if isMethodCall(pass, fun) {
				return sinkHit{pos: call.Pos(), desc: "feeds a writer/hash via ." + name}, true
			}
		case "Errorf", "Error", "Fatalf", "Fatal", "Logf", "Log", "Skipf":
			if recvFromPackage(pass, fun, "testing") {
				return sinkHit{pos: call.Pos(), desc: "emits a test message via t." + name}, true
			}
		case "Printf", "Println", "Print":
			if isMethodCall(pass, fun) {
				return sinkHit{pos: call.Pos(), desc: "prints via ." + name}, true
			}
		}
	}
	return sinkHit{}, false
}

// rootObject resolves the base identifier of x / x.f / x[i] chains.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch ee := e.(type) {
		case *ast.Ident:
			return pass.Pkg.Info.Uses[ee]
		case *ast.SelectorExpr:
			e = ee.X
		case *ast.IndexExpr:
			e = ee.X
		case *ast.ParenExpr:
			e = ee.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration precedes the range
// statement (so values accumulated into it survive the loop).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// isMethodCall reports whether sel is a method selection (not a package
// function or field access).
func isMethodCall(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.Pkg.Info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

// recvFromPackage reports whether sel is a method whose receiver type is
// declared in the named package (e.g. *testing.T).
func recvFromPackage(pass *analysis.Pass, sel *ast.SelectorExpr, pkgPath string) bool {
	s, ok := pass.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call somewhere after the range statement in the same function — the
// collect-keys-then-sort idiom.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg := pass.PkgNameOf(id)
		isSort := pkg == "sort" || (pkg == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if mid, ok := m.(*ast.Ident); ok && pass.Pkg.Info.Uses[mid] == obj {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders a short display form of the ranged expression.
func exprString(e ast.Expr) string {
	switch ee := e.(type) {
	case *ast.Ident:
		return ee.Name
	case *ast.SelectorExpr:
		return exprString(ee.X) + "." + ee.Sel.Name
	case *ast.CallExpr:
		return exprString(ee.Fun) + "(...)"
	case *ast.CompositeLit:
		return "literal"
	case *ast.IndexExpr:
		return exprString(ee.X) + "[...]"
	case *ast.ParenExpr:
		return exprString(ee.X)
	default:
		return "expression"
	}
}
