// Package allowed is on the fixture test's wall-clock allowlist, the
// stand-in for packages whose whole business is real time (the daemon's
// I/O deadlines, the benchmark harnesses). No findings expected.
package allowed

import "time"

// Uptime reads the wall clock by design.
func Uptime(start time.Time) time.Duration { return time.Since(start) }
