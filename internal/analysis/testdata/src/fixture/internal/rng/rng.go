// Package rng is a miniature stand-in for the real module's
// deterministic generator, just enough for the globalrand fixtures: its
// type satisfies math/rand's Source so fixture code can legitimately
// build rand.New over it.
package rng

// RNG is a deterministic stream seeded explicitly.
type RNG struct{ s uint64 }

// New returns a stream seeded with seed.
func New(seed uint64) *RNG { return &RNG{s: seed} }

// Int63 implements math/rand.Source.
func (r *RNG) Int63() int64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int64(r.s >> 1)
}

// Seed implements math/rand.Source.
func (r *RNG) Seed(seed int64) { r.s = uint64(seed) }
