// Package badpragma holds malformed suppression pragmas. Each is its
// own finding under the reserved "pragma" analyzer and cannot be
// suppressed; a prefix that merely resembles the directive is ignored.
package badpragma

//wfvet:ignore
func MissingName() {}

//wfvet:ignore nosuchanalyzer because reasons
func UnknownAnalyzer() {}

//wfvet:ignore floateq
func MissingReason() {}

//wfvet:ignoreXXX not the directive at all — silent
func NotADirective() {}
