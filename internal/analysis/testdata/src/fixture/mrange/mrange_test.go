package mrange

import "testing"

// Test files are checked too — a map-ordered failure message differs run
// to run: finding.
func TestKeys(t *testing.T) {
	m := map[string]int{"a": 1, "b": 2}
	for k := range m {
		t.Errorf("unexpected key %q", k)
	}
}
