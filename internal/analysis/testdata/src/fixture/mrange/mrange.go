// Package mrange exercises the maprange analyzer: map-ranged loops that
// emit, send, or escape in iteration order are findings; order-
// insensitive bodies and the collect-then-sort idiom are not.
package mrange

import (
	"fmt"
	"sort"
)

// Emit prints in iteration order: finding.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Send delivers keys on a channel in iteration order: finding.
func Send(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k
	}
}

// Escape appends to a slice that outlives the loop, unsorted: finding.
func Escape(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the canonical fix — collect then sort: silent.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sum accumulates order-insensitively: silent.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert builds another map — order-insensitive: silent.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Pragmad emits deliberately order-free output and says so with a
// standalone pragma above the loop.
func Pragmad(m map[string]int) {
	//wfvet:ignore maprange fixture: sink is order-independent by design
	for k, v := range m {
		fmt.Println(k, v)
	}
}
