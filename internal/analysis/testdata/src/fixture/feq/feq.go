// Package feq exercises the floateq analyzer: exact ==/!= on computed
// floats are findings; constant folds, the NaN idiom, and pragma'd
// sentinel guards are not.
package feq

// Equal compares computed floats exactly: finding.
func Equal(a, b float64) bool {
	return a == b
}

// Differs compares computed floats exactly: finding.
func Differs(a, b float64) bool {
	return a-1 != b+1
}

// IsNaN is the portable NaN check — self-comparison: silent.
func IsNaN(x float64) bool { return x != x }

const half = 0.5

// ConstFold compares two untyped constants — exact by definition:
// silent.
func ConstFold() bool { return half == 1.0/2.0 }

// ZeroSentinel guards an exact, only-ever-assigned sentinel and says so.
func ZeroSentinel(span float64) bool {
	return span == 0 //wfvet:ignore floateq fixture: 0 is an assigned sentinel, never computed
}
