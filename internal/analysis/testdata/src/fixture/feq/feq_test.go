// External test package: loaded as its own unit (fixture/feq.test).
// Float equality in test files is allowed by policy — asserting exact
// reproducibility is the point of the determinism tests. No finding.
package feq_test

import (
	"testing"

	"fixture/feq"
)

func TestExactReproducibility(t *testing.T) {
	a, b := 0.1+0.2, 0.3
	if feq.Equal(a, b) {
		t.Log("exactly equal")
	}
	if a == b {
		t.Log("still exactly equal")
	}
}
