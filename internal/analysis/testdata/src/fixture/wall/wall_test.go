package wall

import (
	"testing"
	"time"
)

// Wall-clock use in test files is allowed by policy: watchdog deadlines
// and polls are real time by nature. No finding expected here.
func TestWatchdogDeadline(t *testing.T) {
	deadline := time.Now().Add(time.Second)
	if deadline.IsZero() {
		t.Fatal("impossible")
	}
}
