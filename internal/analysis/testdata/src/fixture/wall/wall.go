// Package wall exercises the walltime analyzer: wall-clock reads are
// findings; pragma'd sites and pure time-package uses are not.
package wall

import "time"

// Bad samples and waits on the wall clock: three findings.
func Bad() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

// Pragmad measures real time deliberately and says so inline.
func Pragmad() time.Time {
	return time.Now() //wfvet:ignore walltime fixture: deliberately measures real time
}

// StandalonePragma is suppressed by the pragma line above the read.
func StandalonePragma() time.Time {
	//wfvet:ignore walltime fixture: standalone pragma covers the next line
	return time.Now()
}

// Fine touches only time types and pure conversions: silent.
func Fine(d time.Duration) time.Time { return time.Unix(0, d.Nanoseconds()) }
