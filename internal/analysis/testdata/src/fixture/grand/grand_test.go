package grand

import (
	"math/rand"
	"testing"
)

// Test files are checked too — a test that draws from the global source
// is flaky by construction: finding.
func TestDraws(t *testing.T) {
	if rand.Intn(2) > 1 {
		t.Fatal("impossible")
	}
}
