// Package grand exercises the globalrand analyzer: top-level math/rand
// draws and non-rng-derived sources are findings; generators built over
// an internal/rng stream, and mere references to math/rand types, are
// not.
package grand

import (
	"math/rand"

	"fixture/internal/rng"
)

// Bad draws from the shared global source: finding.
func Bad() int {
	return rand.Intn(10)
}

// BadSource builds a generator over a non-rng source: two findings, one
// per constructor (the nested NewSource is vetted as its own call).
func BadSource() *rand.Rand {
	return rand.New(rand.NewSource(7))
}

// AsValue references a constructor without calling it, so its eventual
// source cannot be vetted: finding.
var AsValue func(rand.Source) *rand.Rand = rand.New

// Derived builds a generator over the module's deterministic stream:
// silent.
func Derived(seed uint64) *rand.Rand {
	return rand.New(rng.New(seed))
}

// Pragmad draws from the global source deliberately and says so.
func Pragmad() float64 {
	return rand.Float64() //wfvet:ignore globalrand fixture: deliberate global draw
}

// Holder keeps a legitimately-constructed generator: referencing
// math/rand types is silent.
type Holder struct {
	R *rand.Rand
	S rand.Source
}
