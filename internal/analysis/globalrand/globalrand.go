// Package globalrand forbids math/rand where determinism matters —
// which, in this repository, is everywhere. All randomness must flow
// from internal/rng's explicitly-seeded, splittable xoshiro256**
// streams: the top-level math/rand functions draw from a shared,
// auto-seeded global source, and a rand.New over a source that is not
// derived from an internal/rng stream forks the reproducibility story
// the moment it is sampled. The analyzer flags
//
//   - every use of a math/rand (or math/rand/v2) package-level function
//     (rand.Intn, rand.Float64, rand.Shuffle, ...), and
//   - rand.New / rand.NewSource calls whose source argument does not
//     visibly derive from an internal/rng generator (the argument
//     expression, or the fields of its named struct type, must mention a
//     type declared in an .../internal/rng package).
//
// Referencing math/rand types (rand.Source, *rand.Rand) is fine: holding
// a legitimately-constructed generator is not a violation, constructing
// an untracked one is. Test files are checked too — a test that draws
// from the global source is flaky by construction.
package globalrand

import (
	"go/ast"
	"go/types"
	"strings"

	"wayfinder/internal/analysis"
)

// randPaths are the import paths the analyzer polices.
var randPaths = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// New returns the globalrand analyzer. rngSuffixes lists import-path
// suffixes (e.g. "internal/rng") whose types mark a random source as
// deterministically derived.
func New(rngSuffixes []string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "globalrand",
		Doc:  "forbid top-level math/rand functions and rand.New sources not derived from internal/rng",
		Run: func(pass *analysis.Pass) {
			// visit recurses so nested constructors — rand.New(rand.
			// NewSource(n)) — are each vetted as calls, not misreported
			// as value references by a flat walk over the arguments.
			var visit func(n ast.Node) bool
			visit = func(n ast.Node) bool {
				// Check constructor calls first so an allowed
				// rand.New(src) does not also trip the generic
				// function-use check on its Fun selector.
				if call, ok := n.(*ast.CallExpr); ok {
					if sel := randSelector(pass, call.Fun); sel != nil && isConstructor(sel.Sel.Name) {
						if !argDerivesFromRNG(pass, call.Args, rngSuffixes) {
							pass.Reportf(call.Pos(),
								"rand.%s source is not derived from internal/rng; seed it from the session's rng stream or annotate //wfvet:ignore globalrand <reason>",
								sel.Sel.Name)
						}
						// Still descend into the arguments, but skip
						// re-reporting the constructor selector.
						for _, arg := range call.Args {
							ast.Inspect(arg, visit)
						}
						return false
					}
				}
				return inspectUse(pass, n)
			}
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, visit)
			}
		},
	}
}

// inspectUse flags a selector that names a math/rand package-level
// function. Returns true to continue the walk.
func inspectUse(pass *analysis.Pass, n ast.Node) bool {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return true
	}
	s := randSelector(pass, sel)
	if s == nil {
		return true
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	if _, isFunc := obj.(*types.Func); !isFunc {
		return true // types and constants are fine
	}
	if isConstructor(sel.Sel.Name) {
		// A constructor referenced as a value (not called): there is no
		// argument to vet, so be conservative.
		pass.Reportf(sel.Pos(),
			"rand.%s referenced as a value; wfvet cannot vet its source, construct it from internal/rng or annotate //wfvet:ignore globalrand <reason>",
			sel.Sel.Name)
		return true
	}
	pass.Reportf(sel.Pos(),
		"top-level rand.%s draws from math/rand's shared global source; use internal/rng or annotate //wfvet:ignore globalrand <reason>",
		sel.Sel.Name)
	return true
}

// randSelector returns sel if it selects through a math/rand package
// name.
func randSelector(pass *analysis.Pass, e ast.Expr) *ast.SelectorExpr {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !randPaths[pass.PkgNameOf(id)] {
		return nil
	}
	return sel
}

// isConstructor reports whether a math/rand function builds a generator
// from a caller-supplied source or seed.
func isConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewChaCha8", "NewPCG", "NewZipf":
		return true
	}
	return false
}

// argDerivesFromRNG reports whether any constructor argument visibly
// involves an internal/rng type: the argument subtree mentions an
// expression of such a type, or its (named struct) type wraps one.
func argDerivesFromRNG(pass *analysis.Pass, args []ast.Expr, rngSuffixes []string) bool {
	for _, arg := range args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok || found {
				return !found
			}
			if typeInvolvesRNG(pass.TypeOf(e), rngSuffixes, 0) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// typeInvolvesRNG walks a type (through pointers and one level of named
// struct fields) looking for a type declared in an internal/rng package.
func typeInvolvesRNG(t types.Type, rngSuffixes []string, depth int) bool {
	if t == nil || depth > 2 {
		return false
	}
	switch tt := t.(type) {
	case *types.Pointer:
		return typeInvolvesRNG(tt.Elem(), rngSuffixes, depth)
	case *types.Named:
		if pkg := tt.Obj().Pkg(); pkg != nil {
			for _, suf := range rngSuffixes {
				if pkg.Path() == suf || strings.HasSuffix(pkg.Path(), "/"+suf) {
					return true
				}
			}
		}
		if st, ok := tt.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if typeInvolvesRNG(st.Field(i).Type(), rngSuffixes, depth+1) {
					return true
				}
			}
		}
	}
	return false
}
