// Package analysis is the wfvet analyzer framework: a stdlib-only
// miniature of golang.org/x/tools/go/analysis, purpose-built to machine-
// check the determinism invariants every guarantee in this repository
// rests on (W=1 ≡ sequential, byte-reproducible reports per (seed,
// workers, staleness, hosts), snapshot/resume and kill-9 restart
// byte-identity).
//
// An Analyzer inspects one type-checked package unit (a Pass) and
// reports Findings. The driver (cmd/wfvet) loads packages with go/parser
// and go/types (load.go), runs every registered analyzer, filters
// findings through the shared //wfvet:ignore pragma syntax (pragma.go),
// and exits non-zero when any finding survives.
//
// # Adding an analyzer
//
// An analyzer is one determinism invariant turned into a check. To add
// one:
//
//  1. Create internal/analysis/<name>/<name>.go exporting a New
//     function that returns an *analysis.Analyzer. Name is the
//     identifier findings carry in brackets and pragmas reference;
//     configuration (allowlists, path suffixes) comes in as New's
//     arguments so the analyzer itself stays policy-free.
//
//  2. Write Run against the Pass: walk pass.Pkg.Files with ast.Inspect,
//     resolve semantics through the type checker — pass.TypeOf for
//     expression types, pass.PkgNameOf to identify imported packages
//     robustly under renaming, pass.Pkg.Info.Uses/Selections for
//     objects and method receivers — and report with pass.Reportf. Never
//     match source text; the checker already knows what an identifier
//     means.
//
//  3. Decide the test-file policy explicitly. pass.IsTestFile skips
//     _test.go when the invariant guards production determinism only
//     (walltime, floateq); analyzers whose violations make tests
//     themselves flaky (globalrand, maprange) check test files too.
//     Document the choice in the package comment.
//
//  4. Register the analyzer in cmd/wfvet's analyzers() with its
//     repository configuration, and mention it in the command doc.
//
//  5. Add fixtures under internal/analysis/testdata/src/fixture/: a
//     package exercising hit, miss, and pragma-suppressed cases side by
//     side, expected findings regenerated into testdata/fixture.golden
//     with `go test ./internal/analysis -run Golden -update`, and the
//     per-file counts in TestFixtureInvariants extended.
//
// Suppression comes for free: Run filters every finding through the
// //wfvet:ignore <analyzer> <reason> pragma (inline for the same line,
// standalone above a statement, stacking), and malformed pragmas are
// themselves findings under the reserved, unsuppressible name "pragma" —
// so a new analyzer's name becomes pragma-addressable the moment it is
// registered.
package analysis
