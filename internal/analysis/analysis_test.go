package analysis_test

import (
	"flag"
	"io/fs"
	"maps"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"wayfinder/internal/analysis"
	"wayfinder/internal/analysis/floateq"
	"wayfinder/internal/analysis/globalrand"
	"wayfinder/internal/analysis/maprange"
	"wayfinder/internal/analysis/walltime"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// fixtureRoot is the self-contained fixture module: its own go.mod, its
// own fake internal/rng, and one package per analyzer holding hit, miss,
// pragma-suppressed, and allowlisted cases side by side.
const fixtureRoot = "testdata/src/fixture"

// loadFixture loads every fixture package unit.
func loadFixture(t *testing.T) []*analysis.Package {
	t.Helper()
	root, err := filepath.Abs(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "fixture" {
		t.Fatalf("loader.Module = %q, want fixture", loader.Module)
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		units, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs
}

// fixtureAnalyzers mirrors the driver's suite with fixture-local
// configuration: fixture/allowed may read the wall clock, and the fake
// fixture/internal/rng marks sources as deterministically derived.
func fixtureAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		walltime.New([]string{"fixture/allowed"}),
		globalrand.New([]string{"internal/rng"}),
		maprange.New(),
		floateq.New(),
	}
}

// TestFixtureGolden runs the full suite over the fixture module and
// compares the rendered findings against the golden file. Regenerate
// with: go test ./internal/analysis -run Golden -update
func TestFixtureGolden(t *testing.T) {
	pkgs := loadFixture(t)
	findings := analysis.Run(pkgs, fixtureAnalyzers())
	root, err := filepath.Abs(fixtureRoot)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		f.Pos.Filename = filepath.ToSlash(rel)
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	got := b.String()
	golden := filepath.Join("testdata", "fixture.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("findings diverge from %s (re-run with -update after reviewing):\ngot:\n%swant:\n%s", golden, got, want)
	}
}

// TestFixtureInvariants spot-checks the policy matrix directly so a
// stale golden cannot silently weaken it: allowlisted and pragma'd sites
// stay silent, per-analyzer test-file policy holds, and the sorted
// output order is stable.
func TestFixtureInvariants(t *testing.T) {
	pkgs := loadFixture(t)
	findings := analysis.Run(pkgs, fixtureAnalyzers())

	byFile := make(map[string][]analysis.Finding)
	for _, f := range findings {
		byFile[filepath.Base(f.Pos.Filename)] = append(byFile[filepath.Base(f.Pos.Filename)], f)
	}

	// Allowlisted package: silent.
	if got := byFile["allowed.go"]; len(got) != 0 {
		t.Errorf("allowlisted package produced findings: %v", got)
	}
	// walltime and floateq skip test files.
	if got := byFile["wall_test.go"]; len(got) != 0 {
		t.Errorf("walltime flagged a test file: %v", got)
	}
	if got := byFile["feq_test.go"]; len(got) != 0 {
		t.Errorf("floateq flagged a test file: %v", got)
	}
	// globalrand and maprange check test files.
	if got := byFile["grand_test.go"]; len(got) == 0 {
		t.Error("globalrand missed the global draw in grand_test.go")
	}
	if got := byFile["mrange_test.go"]; len(got) == 0 {
		t.Error("maprange missed the map-ordered t.Errorf in mrange_test.go")
	}
	// Exact per-file counts pin the hit/miss/pragma matrix: a pragma'd
	// or allowlisted site leaking, or a miss case firing, changes these.
	wantCounts := map[string]int{
		"wall.go":      3, // Bad's three reads; Pragmad/StandalonePragma/Fine silent
		"grand.go":     4, // Intn, New, nested NewSource, constructor-as-value; Derived/Pragmad silent
		"mrange.go":    3, // Emit, Send, Escape; SortedKeys/Sum/Invert/Pragmad silent
		"feq.go":       2, // Equal, Differs; NaN idiom/const fold/ZeroSentinel silent
		"badpragma.go": 3, // missing name, unknown analyzer, missing reason
		// Test files checked by globalrand/maprange (walltime and
		// floateq skip them — wall_test.go/feq_test.go asserted above).
		"grand_test.go":  1,
		"mrange_test.go": 1,
	}
	for _, file := range slices.Sorted(maps.Keys(byFile)) {
		if _, known := wantCounts[file]; !known && len(byFile[file]) > 0 {
			t.Errorf("%s: unexpected findings: %v", file, byFile[file])
		}
	}
	for _, file := range slices.Sorted(maps.Keys(wantCounts)) {
		if got, want := len(byFile[file]), wantCounts[file]; got != want {
			t.Errorf("%s: %d findings, want %d: %v", file, got, want, byFile[file])
		}
	}
	// Malformed pragmas surface under the reserved, unsuppressible
	// "pragma" analyzer name.
	for _, f := range byFile["badpragma.go"] {
		if f.Analyzer != "pragma" {
			t.Errorf("badpragma.go finding under %q, want pragma: %v", f.Analyzer, f)
		}
	}
	// Output is sorted by (file, line, col, analyzer, message).
	sorted := append([]analysis.Finding(nil), findings...)
	analysis.SortFindings(sorted)
	for i := range findings {
		if findings[i] != sorted[i] {
			t.Fatalf("Run output not in stable sorted order at index %d", i)
		}
	}
}

// TestRunDeterministic runs the suite twice over freshly-loaded packages
// and demands byte-identical rendered output — the analyzers must not
// themselves depend on map iteration order.
func TestRunDeterministic(t *testing.T) {
	render := func() string {
		var b strings.Builder
		for _, f := range analysis.Run(loadFixture(t), fixtureAnalyzers()) {
			b.WriteString(f.String())
			b.WriteString("\n")
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("two runs diverged:\n%s\nvs:\n%s", a, b)
	}
}
