// Package loading for wfvet: go/parser + go/types with a module-aware
// importer, no dependencies outside the standard library. Imports inside
// this module are resolved by mapping the import path onto the module
// directory tree and type-checking the target from source (memoized);
// standard-library imports are delegated to go/importer's source
// importer. go.mod stays dependency-free: the module imports nothing
// else, so those two cases are exhaustive.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit: a package's compiled files plus, for
// the primary unit of a directory, its in-package _test.go files.
// External test packages (package foo_test) load as their own unit.
type Package struct {
	// PkgPath is the unit's import path (the directory's path within the
	// module; external test units carry a ".test" suffix for display).
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Sources retains raw file contents by filename, for pragma layout
	// checks.
	Sources map[string]string
}

// Loader loads and type-checks packages of one module.
type Loader struct {
	// Root is the module root directory (where go.mod lives); Module the
	// module path it declares.
	Root   string
	Module string

	fset    *token.FileSet
	std     types.ImporterFrom
	imports map[string]*types.Package // memoized import units (no test files)
	loading map[string]bool           // import-cycle detection
	sources map[string]string         // filename → content, shared across units
}

// NewLoader locates the module containing startDir (walking up to the
// nearest go.mod) and returns a loader for it.
func NewLoader(startDir string) (*Loader, error) {
	dir, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	root := dir
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: %s/go.mod declares no module path", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		imports: make(map[string]*types.Package),
		loading: make(map[string]bool),
		sources: make(map[string]string),
	}, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded from the module tree, everything else goes to the stdlib source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		return l.importModule(path)
	}
	return l.std.ImportFrom(path, dir, mode)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.Module {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.Module)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// importModule type-checks a module package for import purposes (compiled
// files only, memoized, cycle-checked).
func (l *Loader) importModule(path string) (*types.Package, error) {
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer func() { delete(l.loading, path) }()

	files, _, err := l.parseDir(l.dirFor(path))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", path)
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.imports[path] = pkg
	return pkg, nil
}

// check type-checks one set of parsed files as a package.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		return nil, nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return pkg, info, nil
}

// parseDir parses a directory's Go files, split into compiled files and
// test files. Files are parsed once and cached in the shared FileSet;
// filenames are returned sorted so downstream behavior never depends on
// readdir order.
func (l *Loader) parseDir(dir string) (compiled, tests []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, ok := l.sources[full]
		if !ok {
			data, err := os.ReadFile(full)
			if err != nil {
				return nil, nil, err
			}
			src = string(data)
			l.sources[full] = src
		}
		file, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, file)
		} else {
			compiled = append(compiled, file)
		}
	}
	return compiled, tests, nil
}

// LoadDir loads the analyzable units of one directory: the primary
// package (compiled files plus in-package test files, type-checked
// together) and, when present, the external test package. Directories
// with no Go files yield no units and no error.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	compiled, tests, err := l.parseDir(l.dirFor(path))
	if err != nil {
		return nil, err
	}
	var inPkg, external []*ast.File
	for _, f := range tests {
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	var units []*Package
	if files := append(append([]*ast.File{}, compiled...), inPkg...); len(files) > 0 {
		pkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		units = append(units, l.newPackage(path, dir, files, pkg, info))
	}
	if len(external) > 0 {
		pkg, info, err := l.check(path+".test", external)
		if err != nil {
			return nil, err
		}
		units = append(units, l.newPackage(path+".test", dir, external, pkg, info))
	}
	return units, nil
}

func (l *Loader) newPackage(path, dir string, files []*ast.File, pkg *types.Package, info *types.Info) *Package {
	return &Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   pkg,
		Info:    info,
		Sources: l.sources,
	}
}
