// Core analyzer/pass/finding types and the Run entry point. The package
// overview and the guide for adding an analyzer live in doc.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one determinism invariant turned into a check.
type Analyzer struct {
	// Name is the analyzer's identifier: it appears bracketed in findings
	// and names the analyzer in //wfvet:ignore pragmas.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Finding is one invariant violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the stable wfvet output format
// (file:line:col: [name] message). The file is rendered as stored;
// callers relativize Pos.Filename first if they want relative paths.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// SortFindings orders findings by (file, line, column, analyzer, message)
// so output is stable across runs and map-iteration orders.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Pass is one analyzer's view of one type-checked package unit.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when the checker did
// not record one.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// PkgNameOf reports the import path of the package an identifier names,
// or "" when the identifier is not a package name. Resolving through the
// type checker (rather than matching the literal text "time") keeps the
// analyzers correct under import renaming and local shadowing.
func (p *Pass) PkgNameOf(id *ast.Ident) string {
	if obj, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// IsTestFile reports whether the file a position belongs to is a
// _test.go file. Analyzers whose invariant guards production determinism
// only (walltime, floateq) use it to skip test code.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// Run executes the analyzers over the package units, applies pragma
// suppression, and returns the surviving findings sorted in the stable
// output order. Malformed pragmas (missing analyzer, unknown analyzer,
// missing reason) are themselves findings — they are reported under the
// reserved name "pragma" and cannot be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		pragmas, bad := parsePragmas(pkg, known)
		var found []Finding
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, findings: &found}
			a.Run(pass)
		}
		for _, f := range found {
			if !pragmas.suppressed(f.Analyzer, f.Pos) {
				out = append(out, f)
			}
		}
		out = append(out, bad...)
	}
	SortFindings(out)
	return out
}
