// Package apps defines the four applications the paper evaluates (§4) as
// workload models over the simulated OS: the Nginx web server benchmarked
// with wrk, the Redis key-value store with redis-benchmark, the SQLite
// database with LevelDB's SQLite3 benchmark, and the OpenMP NAS Parallel
// Benchmarks (FT, MG, CG, IS at classes S/W/A/B).
//
// Each application is a sensitivity vector over the simulator's effect
// classes. The structure mirrors the paper's Fig 5 analysis: Nginx, Redis,
// and SQLite are system-intensive and respond to overlapping parameter
// sets (network stack, debug overhead), while NPB is CPU-/memory-bound and
// responds to almost nothing the OS configuration offers — the reason its
// Table 2 improvement is only 1.02× and transfer learning from Redis to
// NPB is unproductive.
package apps

import (
	"fmt"

	"wayfinder/internal/simos"
)

// Nginx returns the Nginx web-server workload: 16 cores, throughput in
// req/s measured by wrk, maximize. Base throughput matches the paper's
// Lupine-Linux default (15731 req/s, Table 2).
func Nginx() *simos.App {
	a := &simos.App{
		Name: "nginx", BenchTool: "wrk", Unit: "req/s",
		Maximize: true, Base: 15731, NoiseStd: 0.02,
		Cores: 16, BenchSeconds: 45,
	}
	a.Sensitivity[simos.ClassNet] = 1.0
	a.Sensitivity[simos.ClassStorage] = 0.15
	a.Sensitivity[simos.ClassMM] = 0.15
	a.Sensitivity[simos.ClassSched] = 0.8
	a.Sensitivity[simos.ClassDebug] = 1.0
	a.Sensitivity[simos.ClassCompile] = 0.6
	a.Sensitivity[simos.ClassApp] = 1.0
	return a
}

// Redis returns the Redis key-value-store workload: single-threaded,
// throughput in req/s measured by redis-benchmark, maximize. Base matches
// Table 2's 58000 req/s.
func Redis() *simos.App {
	a := &simos.App{
		Name: "redis", BenchTool: "redis-benchmark", Unit: "req/s",
		Maximize: true, Base: 58000, NoiseStd: 0.02,
		Cores: 1, BenchSeconds: 40,
	}
	a.Sensitivity[simos.ClassNet] = 0.6
	a.Sensitivity[simos.ClassStorage] = 0.35
	a.Sensitivity[simos.ClassMM] = 0.25
	a.Sensitivity[simos.ClassSched] = 0.25
	a.Sensitivity[simos.ClassDebug] = 1.0
	a.Sensitivity[simos.ClassCompile] = 0.7
	a.Sensitivity[simos.ClassApp] = 1.0
	return a
}

// SQLite returns the SQLite workload: single-threaded INSERT-heavy
// LevelDB SQLite3 benchmark, metric is latency in µs per operation,
// minimize. Base matches Table 2's 284 µs/op. Its storage-parameter
// optima coincide with the kernel defaults, which is why the paper finds
// no configuration better than default (Table 2: 1×).
func SQLite() *simos.App {
	a := &simos.App{
		Name: "sqlite", BenchTool: "db_bench_sqlite3", Unit: "us/op",
		Maximize: false, Base: 284, NoiseStd: 0.025,
		Cores: 1, BenchSeconds: 50,
	}
	a.Sensitivity[simos.ClassNet] = 0.3
	a.Sensitivity[simos.ClassStorage] = 1.0
	a.Sensitivity[simos.ClassMM] = 0.35
	a.Sensitivity[simos.ClassSched] = 0.2
	a.Sensitivity[simos.ClassDebug] = 0.9
	a.Sensitivity[simos.ClassCompile] = 0.5
	a.Sensitivity[simos.ClassApp] = 0.0
	return a
}

// NPB returns the NAS Parallel Benchmarks workload (OpenMP FT, MG, CG, IS
// at classes S/W/A/B, aggregated Mop/s), maximize. CPU- and memory-bound:
// the OS configuration has almost no purchase on it (Table 2: 1.02×).
func NPB() *simos.App {
	a := &simos.App{
		Name: "npb", BenchTool: "npb-suite", Unit: "Mop/s",
		Maximize: true, Base: 1497, NoiseStd: 0.015,
		Cores: 16, BenchSeconds: 70,
	}
	a.Sensitivity[simos.ClassNet] = 0.0
	a.Sensitivity[simos.ClassStorage] = 0.03
	a.Sensitivity[simos.ClassMM] = 0.4
	a.Sensitivity[simos.ClassSched] = 0.3
	a.Sensitivity[simos.ClassDebug] = 0.08
	a.Sensitivity[simos.ClassCompile] = 0.1
	a.Sensitivity[simos.ClassApp] = 0.0
	return a
}

// All returns the four applications in the paper's order.
func All() []*simos.App {
	return []*simos.App{Nginx(), Redis(), SQLite(), NPB()}
}

// ByName returns the named application.
func ByName(name string) (*simos.App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// NPBProgram describes one NAS Parallel Benchmarks program run, used by
// the NPB bench driver to report the per-program breakdown the suite
// aggregates.
type NPBProgram struct {
	Name  string  // FT, MG, CG, IS
	Class string  // S, W, A, B
	Mops  float64 // contribution at the default configuration
}

// NPBPrograms lists the program × size-class mix the paper runs ("a mix of
// CPU- and memory-intensive programs: FT, MG, CG, IS ... with size classes
// S, W, A, and B"); contributions sum to the suite's base Mop/s.
func NPBPrograms() []NPBProgram {
	progs := []string{"FT", "MG", "CG", "IS"}
	classes := []string{"S", "W", "A", "B"}
	// Larger classes contribute more of the aggregate rate.
	classWeight := map[string]float64{"S": 0.04, "W": 0.06, "A": 0.07, "B": 0.0825}
	progWeight := map[string]float64{"FT": 1.3, "MG": 1.1, "CG": 0.8, "IS": 0.8}
	base := NPB().Base
	var out []NPBProgram
	for _, p := range progs {
		for _, c := range classes {
			out = append(out, NPBProgram{
				Name: p, Class: c,
				Mops: base * classWeight[c] * progWeight[p],
			})
		}
	}
	return out
}
