package apps

import (
	"maps"
	"math"
	"slices"
	"testing"

	"wayfinder/internal/simos"
)

func TestAllFourApps(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("expected 4 applications, got %d", len(all))
	}
	names := map[string]bool{}
	for _, a := range all {
		names[a.Name] = true
	}
	for _, want := range []string{"nginx", "redis", "sqlite", "npb"} {
		if !names[want] {
			t.Fatalf("missing application %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("redis")
	if err != nil || a.Name != "redis" {
		t.Fatalf("ByName(redis) = %v, %v", a, err)
	}
	if _, err := ByName("postgres"); err == nil {
		t.Fatal("unknown app should error")
	}
}

func TestTable2Baselines(t *testing.T) {
	// Base metric values match the paper's Lupine-Linux column (Table 2).
	cases := map[string]float64{"nginx": 15731, "redis": 58000, "sqlite": 284, "npb": 1497}
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		want := cases[name]
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Base != want {
			t.Errorf("%s base = %v, want %v", name, a.Base, want)
		}
	}
}

func TestMetricDirections(t *testing.T) {
	for _, a := range All() {
		wantMax := a.Name != "sqlite"
		if a.Maximize != wantMax {
			t.Errorf("%s maximize = %v", a.Name, a.Maximize)
		}
	}
}

func TestCoreCounts(t *testing.T) {
	// "Redis and SQLite run on 1 core because of their single-threaded
	// nature, while Nginx and NPB run on 16 cores" (§4).
	for _, a := range All() {
		want := 16
		if a.Name == "redis" || a.Name == "sqlite" {
			want = 1
		}
		if a.Cores != want {
			t.Errorf("%s cores = %d, want %d", a.Name, a.Cores, want)
		}
	}
}

func TestSensitivityStructure(t *testing.T) {
	nginx, redis, sqlite, npb := Nginx(), Redis(), SQLite(), NPB()
	// System-intensive apps are debug-sensitive; NPB is not.
	if npb.Sens(simos.ClassDebug) >= 0.5*sqlite.Sens(simos.ClassDebug) {
		t.Fatal("NPB should be far less debug-sensitive than SQLite")
	}
	// Network ordering: nginx > redis > sqlite > npb.
	if !(nginx.Sens(simos.ClassNet) > redis.Sens(simos.ClassNet) &&
		redis.Sens(simos.ClassNet) > sqlite.Sens(simos.ClassNet) &&
		sqlite.Sens(simos.ClassNet) > npb.Sens(simos.ClassNet)) {
		t.Fatal("network sensitivity ordering wrong")
	}
	// Storage: sqlite dominates.
	if sqlite.Sens(simos.ClassStorage) <= redis.Sens(simos.ClassStorage) {
		t.Fatal("SQLite should be the most storage-sensitive")
	}
	// NPB leads on memory sensitivity.
	if npb.Sens(simos.ClassMM) <= nginx.Sens(simos.ClassMM) {
		t.Fatal("NPB should be more memory-sensitive than nginx")
	}
}

func TestBenchTools(t *testing.T) {
	// §4 names the benchmark drivers.
	want := map[string]string{
		"nginx": "wrk", "redis": "redis-benchmark",
		"sqlite": "db_bench_sqlite3", "npb": "npb-suite",
	}
	for _, name := range slices.Sorted(maps.Keys(want)) {
		tool := want[name]
		a, _ := ByName(name)
		if a.BenchTool != tool {
			t.Errorf("%s bench tool = %q, want %q", name, a.BenchTool, tool)
		}
	}
}

func TestNPBProgramMix(t *testing.T) {
	progs := NPBPrograms()
	if len(progs) != 16 {
		t.Fatalf("NPB mix has %d entries, want 4 programs x 4 classes", len(progs))
	}
	seen := map[string]bool{}
	total := 0.0
	for _, p := range progs {
		seen[p.Name+p.Class] = true
		if p.Mops <= 0 {
			t.Fatalf("%s/%s has non-positive rate", p.Name, p.Class)
		}
		total += p.Mops
	}
	if len(seen) != 16 {
		t.Fatal("duplicate program/class combinations")
	}
	if math.Abs(total-NPB().Base)/NPB().Base > 0.02 {
		t.Fatalf("program mix sums to %v, want ≈%v", total, NPB().Base)
	}
}
