// Benchmarks regenerating every table and figure in the paper's
// evaluation (one benchmark per exhibit), plus ablation benchmarks for the
// design choices DESIGN.md calls out. Each benchmark runs its experiment
// at quick scale and reports the key headline number via b.ReportMetric,
// so `go test -bench=. -benchmem` doubles as a miniature reproduction run.
//
// This is an external test package (wayfinder_test): the experiments
// package it drives now pulls in internal/wfd, whose daemon serves
// wayfinder.Session — an in-package test would be an import cycle.
package wayfinder_test

import (
	"strconv"
	"strings"
	"testing"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/experiments"
	"wayfinder/internal/gp"
	"wayfinder/internal/rng"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/vm"
)

// benchScale shrinks the experiments so a full -bench=. run stays in CPU
// minutes.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.Seeds = 1
	s.Iterations = 80
	s.RandomConfigs = 150
	s.PerAppConfigs = 250
	s.TimeBudgetSec = 1800
	s.SynthIters = 40
	s.Workers = 8
	return s
}

// runExp executes an experiment b.N times, reporting the first numeric
// cell of the named column as a custom metric.
func runExp(b *testing.B, id string, metricTable int, metricCol, metricName string) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, scale)
		if err != nil {
			b.Fatal(err)
		}
		if metricCol != "" && len(res.Tables) > metricTable {
			tab := res.Tables[metricTable]
			for ci, col := range tab.Columns {
				if col != metricCol || len(tab.Rows) == 0 {
					continue
				}
				raw := strings.TrimRight(tab.Rows[0][ci], "x%s")
				if v, err := strconv.ParseFloat(raw, 64); err == nil {
					b.ReportMetric(v, metricName)
				}
			}
		}
	}
}

func BenchmarkFig1KconfigCensus(b *testing.B)   { runExp(b, "fig1", 0, "", "") }
func BenchmarkTable1SpaceCensus(b *testing.B)   { runExp(b, "table1", 0, "runtime", "runtime-options") }
func BenchmarkFig2RandomNginx(b *testing.B)     { runExp(b, "fig2", 0, "max/default", "best-vs-default") }
func BenchmarkFig5CrossSimilarity(b *testing.B) { runExp(b, "fig5", 0, "", "") }
func BenchmarkFig7Scalability(b *testing.B)     { runExp(b, "fig7", 0, "", "") }
func BenchmarkFig8LoopBreakdown(b *testing.B)   { runExp(b, "fig8", 0, "seconds", "update-seconds") }
func BenchmarkTable3PredictionAccuracy(b *testing.B) {
	runExp(b, "table3", 0, "failure accuracy", "failure-accuracy")
}
func BenchmarkFig9Unikraft(b *testing.B)         { runExp(b, "fig9", 0, "", "") }
func BenchmarkFig10MemoryFootprint(b *testing.B) { runExp(b, "fig10", 0, "best MB", "best-mb") }
func BenchmarkFig11CozartSynergy(b *testing.B)   { runExp(b, "fig11", 0, "best score", "best-score") }
func BenchmarkTable4TopScores(b *testing.B)      { runExp(b, "table4", 0, "", "") }

// BenchmarkScalingWorkers runs the worker-scaling study, reporting the
// 1-worker wall-clock (row 0) as the headline metric; the experiment's own
// table carries the speedup curve.
func BenchmarkScalingWorkers(b *testing.B) { runExp(b, "scaling", 0, "wall s", "seq-wall-s") }

// BenchmarkStragglerRecovery runs the straggler study (sync barrier vs
// async bounded-staleness scheduler under a 4x-slow worker), reporting the
// recovered wall-clock fraction.
func BenchmarkStragglerRecovery(b *testing.B) { runExp(b, "straggler", 1, "recovery", "recovery-pct") }

// BenchmarkCacheHitDedup runs the artifact-cache study (shared
// content-addressed store vs per-worker build caches at W=8), reporting
// the duplicate builds the store avoided.
func BenchmarkCacheHitDedup(b *testing.B) { runExp(b, "cachehit", 1, "avoided", "builds-avoided") }

// BenchmarkFleetTopology runs the multi-host study (one fresh image per
// round fanned across the fleet), reporting the wall-clock the all-remote
// topology pays in cross-host transfers.
func BenchmarkFleetTopology(b *testing.B) { runExp(b, "fleet", 1, "transfer cost s", "transfer-s") }

// --- Searcher hot-path benchmarks (the incremental surrogate layer) ---

// gpAddSession measures a full 256-observation surrogate session: Add one
// point, force the factor update with a prediction, repeat — the
// model-side loop a Bayesian search session drives. The incremental path
// extends the Cholesky factor in place (O(n²) per add, Θ(T³) per
// session); the refit path refactorizes from scratch (O(n³) per add,
// Θ(T⁴) per session). The acceptance bar is incremental ≥5x faster here.
func gpAddSession(b *testing.B, refit bool) {
	b.Helper()
	const obs = 256
	for i := 0; i < b.N; i++ {
		g := gp.New(0.5, 1, 1e-3)
		g.SetForceRefit(refit)
		r := rng.New(1)
		probe := []float64{0.5, 0.5, 0.5, 0.5}
		for j := 0; j < obs; j++ {
			g.Add([]float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}, r.Float64())
			if _, _, err := g.Predict(probe); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*obs), "ns/add")
}

// BenchmarkGPAddIncremental is the incremental-Cholesky session.
func BenchmarkGPAddIncremental(b *testing.B) { gpAddSession(b, false) }

// BenchmarkGPAddRefit is the full-refactorization baseline session.
func BenchmarkGPAddRefit(b *testing.B) { gpAddSession(b, true) }

// BenchmarkGPWindowedAdd streams 512 observations through a 128-window
// surrogate — four windows past the bound, where every add is an extend
// plus a rank-1 downdate. The ns/add figure is the flat steady-state cost
// an unbounded session pays forever; compare BenchmarkGPAddIncremental,
// whose per-add cost is still growing when its session ends.
func BenchmarkGPWindowedAdd(b *testing.B) {
	const obs, window = 512, 128
	for i := 0; i < b.N; i++ {
		g := gp.New(0.5, 1, 1e-3)
		if err := g.SetWindow(window); err != nil {
			b.Fatal(err)
		}
		r := rng.New(1)
		probe := []float64{0.5, 0.5, 0.5, 0.5}
		for j := 0; j < obs; j++ {
			g.Add([]float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}, r.Float64())
			if _, _, err := g.Predict(probe); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*obs), "ns/add")
}

// BenchmarkEIBatch scores a 96-candidate pool against a warm 128-window
// surrogate with one kernel-matrix build and one batched triangular solve
// per op — the acquisition inner loop of every Bayesian proposal. Steady
// state must not allocate: the batch scratch is owned by the surrogate.
func BenchmarkEIBatch(b *testing.B) {
	const window, pool = 128, 96
	g := gp.New(0.5, 1, 1e-3)
	if err := g.SetWindow(window); err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	best := 0.0
	for i := 0; i < window+window/2; i++ {
		y := r.Float64() * 100
		if y > best {
			best = y
		}
		g.Add([]float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}, y)
	}
	cands := make([][]float64, pool)
	for j := range cands {
		cands[j] = []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64()}
	}
	out := make([]float64, pool)
	if err := g.ExpectedImprovementBatch(cands, best, 0.01, out); err != nil {
		b.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(8, func() {
		if err := g.ExpectedImprovementBatch(cands, best, 0.01, out); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("steady-state batch EI allocated %.0f times per op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.ExpectedImprovementBatch(cands, best, 0.01, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pool), "ns/candidate")
}

// BenchmarkDTMScorePoolBatch runs the DTM over a 96-candidate pool in one
// matrix-shaped forward pass — the DeepTune selector's per-proposal pool
// scoring. Steady state must not allocate: the batch rows are DTM-owned
// scratch, grown once.
func BenchmarkDTMScorePoolBatch(b *testing.B) {
	const dim, hist, pool = 6, 64, 96
	cfg := deeptune.DefaultConfig()
	cfg.Seed = 1
	d := deeptune.New(dim, cfg)
	r := rng.New(3)
	vec := func() []float64 {
		x := make([]float64, dim)
		for k := range x {
			x[k] = r.Float64()
		}
		return x
	}
	xs := make([][]float64, hist)
	ys := make([]float64, hist)
	crashed := make([]bool, hist)
	for i := range xs {
		xs[i], ys[i], crashed[i] = vec(), r.Float64()*100, i%7 == 0
	}
	if err := d.Update(xs, ys, crashed); err != nil {
		b.Fatal(err)
	}
	cands := make([][]float64, pool)
	for j := range cands {
		cands[j] = vec()
	}
	out := make([]deeptune.Prediction, pool)
	d.PredictBatch(cands, out)
	if allocs := testing.AllocsPerRun(8, func() { d.PredictBatch(cands, out) }); allocs != 0 {
		b.Fatalf("steady-state batch scoring allocated %.0f times per op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PredictBatch(cands, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*pool), "ns/candidate")
}

// BenchmarkBayesianProposeBatch measures the native 8-slot batch proposal
// on a warm surrogate: one shared 96-candidate pool scored per slot, with
// constant-liar fantasized observations conditioning later slots.
func BenchmarkBayesianProposeBatch(b *testing.B) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 80, FillerBoot: 10, FillerCompile: 30, Seed: 1})
	m.Space.Favor(configspace.CompileTime, 0)
	s := search.NewBayesian(m.Space, true, 1)
	enc := configspace.NewEncoder(m.Space)
	r := rng.New(2)
	feed := func(c *configspace.Config) {
		s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: r.Float64() * 100, Stage: "ok"})
	}
	for i := 0; i < 96; i++ {
		feed(m.Space.Random(r))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := s.ProposeBatch(8)
		b.StopTimer()
		// Observing off the clock keeps the pending set bounded without
		// charging the surrogate updates to the proposal path.
		for _, c := range batch {
			feed(c)
		}
		b.StartTimer()
	}
}

// BenchmarkDeepTuneObserve measures one DTM incremental retrain — the
// per-iteration model update the paper's Fig 8 reports as flat-cost.
func BenchmarkDeepTuneObserve(b *testing.B) {
	m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 80, FillerBoot: 10, FillerCompile: 30, Seed: 1})
	m.Space.Favor(configspace.CompileTime, 0)
	cfg := deeptune.DefaultConfig()
	cfg.Seed = 1
	s := search.NewDeepTune(m.Space, true, cfg)
	enc := configspace.NewEncoder(m.Space)
	r := rng.New(3)
	for i := 0; i < 32; i++ {
		c := m.Space.Random(r)
		s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: r.Float64() * 100, Stage: "ok"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Space.Random(r)
		s.Observe(search.Observation{Config: c, X: enc.Encode(c), Metric: r.Float64() * 100, Stage: "ok"})
	}
}

// BenchmarkSearcherScale runs the searcherscale experiment end to end —
// the decision-cost-vs-observations study wfbench snapshots into
// BENCH_PR4.json — reporting the incremental tail speedup.
func BenchmarkSearcherScale(b *testing.B) {
	runExp(b, "searcherscale", 0, "", "")
}

// BenchmarkParallelSession measures the real (host) cost of one 8-worker
// session against the sequential baseline at an equal iteration budget —
// for both schedulers, so the CI bench smoke (which runs under the race
// detector) exercises the async event-queue path on every push. Note the
// async rows are not a host-speedup comparison: past the initial fill the
// event-driven scheduler dispatches one evaluation per observation (a
// data dependency), so its host execution is nearly serial by design.
func BenchmarkParallelSession(b *testing.B) {
	run := func(b *testing.B, opts core.Options) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			app := apps.Nginx()
			m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 80, FillerBoot: 10, FillerCompile: 30, Seed: 1})
			m.Space.Favor(configspace.CompileTime, 0)
			s := search.NewRandom(m.Space, 1)
			var clock vm.Clock
			eng := core.NewEngine(m, app, &core.PerfMetric{App: app}, s, &clock, 1)
			rep, err := eng.Run(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.ElapsedSec, "virtual-wall-s")
			b.ReportMetric(100*rep.Utilization, "utilization-pct")
		}
	}
	for _, workers := range []int{1, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			run(b, core.Options{Iterations: 160, Seed: 1, Workers: workers})
		})
	}
	b.Run("workers=8/async", func(b *testing.B) {
		run(b, core.Options{Iterations: 160, Seed: 1, Workers: 8, Async: true, Staleness: -1})
	})
	b.Run("workers=8/async/staleness=2", func(b *testing.B) {
		run(b, core.Options{Iterations: 160, Seed: 1, Workers: 8, Async: true, Staleness: 2})
	})
	// Multi-host sessions exercise the artifact store's fetch/await paths
	// (and, under -race, the two-wave ticket handoff) for both schedulers.
	b.Run("workers=8/hosts=4", func(b *testing.B) {
		run(b, core.Options{Iterations: 160, Seed: 1, Workers: 8, Hosts: 4})
	})
	b.Run("workers=8/hosts=4/async", func(b *testing.B) {
		run(b, core.Options{Iterations: 160, Seed: 1, Workers: 8, Hosts: 4, Async: true, Staleness: -1})
	})
}

// BenchmarkFig6SearchNginx runs the Fig 6a protocol (random vs DeepTune vs
// DeepTune+TL) for Nginx only, reporting DeepTune's best-found throughput.
func BenchmarkFig6SearchNginx(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		app := apps.Nginx()
		m := simos.NewLinux(scale.Linux)
		m.Space.Favor(configspace.CompileTime, 0)
		cfg := deeptune.DefaultConfig()
		s := search.NewDeepTune(m.Space, true, cfg)
		var clock vm.Clock
		eng := core.NewEngine(m, app, &core.PerfMetric{App: app}, s, &clock, 1)
		rep, err := eng.Run(core.Options{Iterations: scale.Iterations, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Best != nil {
			b.ReportMetric(rep.Best.Metric, "req/s")
		}
	}
}

// BenchmarkTable2BestConfigs runs the Table 2 pipeline at bench scale.
func BenchmarkTable2BestConfigs(b *testing.B) {
	scale := benchScale()
	scale.Iterations = 60
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(scale); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §Key design decisions) ---

// ablationSession runs one DeepTune session with the given config tweak
// and reports best throughput and crash count.
func ablationSession(b *testing.B, mutate func(*deeptune.Config)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		app := apps.Nginx()
		m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 80, FillerBoot: 10, FillerCompile: 20, Seed: 1})
		m.Space.Favor(configspace.CompileTime, 0)
		cfg := deeptune.DefaultConfig()
		mutate(&cfg)
		s := search.NewDeepTune(m.Space, true, cfg)
		var clock vm.Clock
		eng := core.NewEngine(m, app, &core.PerfMetric{App: app}, s, &clock, 1)
		rep, err := eng.Run(core.Options{Iterations: 80, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Best != nil {
			b.ReportMetric(rep.Best.Metric, "req/s")
		}
		b.ReportMetric(float64(rep.Crashes), "crashes")
	}
}

// BenchmarkAblationBaseline is the reference DeepTune configuration.
func BenchmarkAblationBaseline(b *testing.B) {
	ablationSession(b, func(*deeptune.Config) {})
}

// BenchmarkAblationNoUncertainty removes the RBF uncertainty term from the
// scoring function (α=1: pure dissimilarity).
func BenchmarkAblationNoUncertainty(b *testing.B) {
	ablationSession(b, func(c *deeptune.Config) { c.Alpha = 1 })
}

// BenchmarkAblationNoCrashHead disables crash gating (threshold 1 accepts
// everything), isolating the value of failure prediction.
func BenchmarkAblationNoCrashHead(b *testing.B) {
	ablationSession(b, func(c *deeptune.Config) { c.CrashThreshold = 1.01 })
}

// BenchmarkAblationAlphaSweep reports best throughput across the Eq. 3
// α grid, the paper's 0.5 recommendation among them.
func BenchmarkAblationAlphaSweep(b *testing.B) {
	for _, alpha := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		alpha := alpha
		b.Run("alpha="+strconv.FormatFloat(alpha, 'f', 2, 64), func(b *testing.B) {
			ablationSession(b, func(c *deeptune.Config) { c.Alpha = alpha })
		})
	}
}

// BenchmarkAblationBuildSkip measures the virtual-time saving of the §3.1
// build-skip optimization by comparing runtime-only sessions with and
// without compile-time variation.
func BenchmarkAblationBuildSkip(b *testing.B) {
	run := func(b *testing.B, favorCompile float64, name string) {
		for i := 0; i < b.N; i++ {
			app := apps.Nginx()
			m := simos.NewLinux(simos.LinuxOptions{FillerRuntime: 40, FillerCompile: 20, Seed: 1})
			m.Space.Favor(configspace.CompileTime, favorCompile)
			s := search.NewRandom(m.Space, 1)
			var clock vm.Clock
			eng := core.NewEngine(m, app, &core.PerfMetric{App: app}, s, &clock, 1)
			rep, err := eng.Run(core.Options{Iterations: 40, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rep.ElapsedSec/float64(len(rep.History)), "virtual-s/iter")
			b.ReportMetric(float64(rep.Builds), "builds")
		}
		_ = name
	}
	b.Run("runtime-only", func(b *testing.B) { run(b, 0, "skip") })
	b.Run("with-compile", func(b *testing.B) { run(b, 1, "rebuild") })
}
