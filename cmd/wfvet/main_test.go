package main

import (
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureRoot reuses the analysis package's self-contained fixture
// module as a working directory: the driver walks up to its go.mod and
// treats it as module "fixture".
func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../../internal/analysis/testdata/src/fixture")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// runIn invokes the driver body the way main does, from dir.
func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, dir, &out, &errw)
	return code, out.String(), errw.String()
}

// TestFaultPackageNotWallClockAllowed pins the determinism review the
// fault subsystem rests on: internal/fault (and internal/core, which
// consumes it) must stay OUT of the wall-clock allowlist — a fault
// schedule is virtual-time data, and the moment either package reads the
// real clock, schedules stop being reproducible.
func TestFaultPackageNotWallClockAllowed(t *testing.T) {
	const module = "wayfinder"
	allowed := map[string]bool{}
	for _, pkg := range walltimeAllowlist(module) {
		allowed[pkg] = true
	}
	for _, banned := range []string{module + "/internal/fault", module + "/internal/core"} {
		if allowed[banned] {
			t.Fatalf("%s is on the wall-clock allowlist; fault schedules must stay in virtual time", banned)
		}
	}
	if !allowed[module+"/internal/vm"] {
		t.Fatal("the virtual-clock package itself should remain allowlisted")
	}
}

// TestCorpusPackageNotWallClockAllowed pins the tuning-memory contract:
// internal/corpus must stay OUT of the wall-clock allowlist. Corpus
// entries are content-addressed and index queries are pure functions —
// a timestamp anywhere in the store would change digests across runs
// and break frozen-corpus reproducibility.
func TestCorpusPackageNotWallClockAllowed(t *testing.T) {
	const module = "wayfinder"
	for _, pkg := range walltimeAllowlist(module) {
		if pkg == module+"/internal/corpus" {
			t.Fatalf("%s is on the wall-clock allowlist; corpus entries must stay content-addressed and time-free", pkg)
		}
	}
}

func TestExitCodeClean(t *testing.T) {
	code, stdout, stderr := runIn(t, fixtureRoot(t), "./internal/rng")
	if code != 0 {
		t.Fatalf("exit %d on clean package, want 0; stderr: %s", code, stderr)
	}
	if stdout != "" || stderr != "" {
		t.Errorf("clean run produced output: stdout=%q stderr=%q", stdout, stderr)
	}
}

func TestExitCodeFindings(t *testing.T) {
	code, stdout, stderr := runIn(t, fixtureRoot(t), "./feq")
	if code != 1 {
		t.Fatalf("exit %d on package with findings, want 1; stderr: %s", code, stderr)
	}
	lines := strings.Split(strings.TrimSuffix(stdout, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(lines), stdout)
	}
	// file:line:col: [analyzer] message, with the file relative to cwd.
	format := regexp.MustCompile(`^feq/feq\.go:\d+:\d+: \[floateq\] .+$`)
	for _, line := range lines {
		if !format.MatchString(filepath.ToSlash(line)) {
			t.Errorf("finding line does not match the stable format: %q", line)
		}
	}
	if want := "wfvet: 2 finding(s)\n"; stderr != want {
		t.Errorf("stderr = %q, want %q", stderr, want)
	}
}

func TestExitCodeUsageError(t *testing.T) {
	code, _, stderr := runIn(t, fixtureRoot(t), "./nosuchdir")
	if code != 2 {
		t.Fatalf("exit %d on missing directory, want 2", code)
	}
	if !strings.HasPrefix(stderr, "wfvet:") {
		t.Errorf("stderr = %q, want a wfvet: error", stderr)
	}
}

// TestRecursiveDeterministic runs ./... twice over the fixture module
// and demands byte-identical, sorted output.
func TestRecursiveDeterministic(t *testing.T) {
	root := fixtureRoot(t)
	code1, out1, _ := runIn(t, root, "./...")
	code2, out2, _ := runIn(t, root, "./...")
	if code1 != 1 || code2 != 1 {
		t.Fatalf("exit codes %d, %d; want 1, 1", code1, code2)
	}
	if out1 != out2 {
		t.Errorf("two runs diverged:\n%s\nvs:\n%s", out1, out2)
	}
	// Findings are grouped by file in ascending position order — the
	// numeric (file, line, col) sort, not a lexicographic one.
	files := strings.Split(strings.TrimSuffix(out1, "\n"), "\n")
	for i := range files {
		files[i] = files[i][:strings.Index(files[i], ":")]
	}
	if !sort.StringsAreSorted(files) {
		t.Errorf("output not grouped by sorted file:\n%s", out1)
	}
}

// TestDefaultPatternIsRecursive checks that no arguments means ./...
func TestDefaultPatternIsRecursive(t *testing.T) {
	root := fixtureRoot(t)
	_, explicit, _ := runIn(t, root, "./...")
	_, implicit, _ := runIn(t, root)
	if explicit != implicit {
		t.Errorf("default run differs from ./...:\n%s\nvs:\n%s", implicit, explicit)
	}
}
