// Command wfvet runs the determinism-invariant analyzer suite over this
// module. Usage:
//
//	wfvet [packages]
//
// where packages are directory patterns relative to the working
// directory ("./...", "./internal/core", "internal/..."; default
// "./..."). Every package unit — including in-package and external test
// files — is parsed and type-checked from source (stdlib only: go/parser
// + go/types via the source importer), then checked by every analyzer:
//
//	walltime    wall-clock reads outside the allowlist
//	globalrand  math/rand instead of internal/rng
//	maprange    map iteration feeding order-sensitive sinks
//	floateq     exact ==/!= on floats outside tests
//
// Deliberate violations are annotated in source with
// //wfvet:ignore <analyzer> <reason>. Exit status: 0 clean, 1 findings,
// 2 load/usage errors. CI runs `make vet-wf`, which is this command over
// ./... — a finding is a red build.
package main

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wayfinder/internal/analysis"
	"wayfinder/internal/analysis/floateq"
	"wayfinder/internal/analysis/globalrand"
	"wayfinder/internal/analysis/maprange"
	"wayfinder/internal/analysis/walltime"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfvet:", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], cwd, os.Stdout, os.Stderr))
}

// walltimeAllowlist is the reviewed set of packages whose whole business
// is real time; everything else must use the virtual clock or carry a
// per-site pragma. Notably absent: internal/fault and internal/core —
// fault schedules and the sessions they drive live entirely in virtual
// time (pinned by test).
func walltimeAllowlist(module string) []string {
	return []string{
		// The virtual-clock home: the package that defines what time means
		// for sessions is allowed to touch the real one.
		module + "/internal/vm",
		// The daemon serves real clients: I/O deadlines, journal
		// timestamps, uptime accounting.
		module + "/internal/wfd",
		module + "/cmd/wfd",
		// The benchmark harnesses measure real ns/op by design.
		module + "/internal/experiments",
		module + "/cmd/wfbench",
	}
}

// analyzers assembles the suite with the repository's wall-clock
// allowlist.
func analyzers(module string) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		walltime.New(walltimeAllowlist(module)),
		globalrand.New([]string{"internal/rng"}),
		maprange.New(),
		floateq.New(),
	}
}

// run is the testable driver body.
func run(args []string, cwd string, stdout, stderr io.Writer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "wfvet:", err)
		return 2
	}
	dirs, err := expand(cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "wfvet:", err)
		return 2
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		units, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, "wfvet:", err)
			return 2
		}
		pkgs = append(pkgs, units...)
	}
	findings := analysis.Run(pkgs, analyzers(loader.Module))
	for _, f := range findings {
		f.Pos.Filename = relativize(cwd, f.Pos.Filename)
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "wfvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// expand resolves directory patterns. A trailing "/..." walks the
// subtree; anything else names one directory. Directories named
// testdata or vendor, and hidden or underscore-prefixed ones, are
// skipped during walks — testdata holds the analyzers' deliberately-
// violating fixtures. Only directories containing .go files are
// returned, sorted and deduplicated.
func expand(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) error {
		if seen[dir] {
			return nil
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				seen[dir] = true
				out = append(out, dir)
				return nil
			}
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(cwd, root)
		}
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", pat)
		}
		if !recursive {
			if err := add(root); err != nil {
				return nil, err
			}
			continue
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return add(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// relativize renders a path relative to the working directory when it is
// inside it, matching go vet's output convention.
func relativize(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
