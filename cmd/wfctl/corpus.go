// Corpus subcommands: inspect and compact a transfer-corpus directory
// on disk (the same files a -corpus daemon or WithCorpus session uses;
// the store is content-addressed, so concurrent readers are safe).
//
//	wfctl corpus ls -dir ./corpus
//	wfctl corpus show -dir ./corpus <digest>
//	wfctl corpus gc -dir ./corpus -keep 64
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"wayfinder/internal/corpus"
)

func cmdCorpus(args []string) {
	if len(args) < 1 {
		corpusUsage()
	}
	switch args[0] {
	case "ls":
		cmdCorpusLs(args[1:])
	case "show":
		cmdCorpusShow(args[1:])
	case "gc":
		cmdCorpusGC(args[1:])
	default:
		corpusUsage()
	}
}

func corpusUsage() {
	fmt.Fprintln(os.Stderr, `usage: wfctl corpus <ls|show|gc> -dir <corpus-dir> ...
  ls   -dir D             list entries (digest, app, observations, seeds)
  show -dir D <digest>    print one entry's canonical JSON (prefix match)
  gc   -dir D -keep N     compact to the N most-observed entries`)
	os.Exit(2)
}

func openCorpusDir(dir string) *corpus.Store {
	if dir == "" {
		fatal(fmt.Errorf("corpus: -dir is required"))
	}
	st, err := corpus.Open(dir)
	if err != nil {
		fatal(err)
	}
	return st
}

func cmdCorpusLs(args []string) {
	fs := newFlagSet("corpus ls")
	dir := fs.String("dir", "", "corpus directory")
	_ = fs.Parse(args)
	if fs.NArg() != 0 {
		corpusUsage()
	}
	st := openCorpusDir(*dir)
	fmt.Printf("corpus %s: %d entries, hash %.12s\n", *dir, st.Len(), st.Hash())
	for _, d := range st.Digests() {
		e, _ := st.Get(d)
		dtm := ""
		if len(e.DTM) > 0 {
			dtm = " dtm"
		}
		fmt.Printf("  %.12s  %-8s obs=%-5d seeds=%d%s\n", d, e.App, e.Observations, len(e.Seeds), dtm)
	}
}

func cmdCorpusShow(args []string) {
	fs := newFlagSet("corpus show")
	dir := fs.String("dir", "", "corpus directory")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		corpusUsage()
	}
	st := openCorpusDir(*dir)
	prefix := fs.Arg(0)
	var matches []string
	for _, d := range st.Digests() {
		if strings.HasPrefix(d, prefix) {
			matches = append(matches, d)
		}
	}
	switch len(matches) {
	case 0:
		fatal(fmt.Errorf("corpus: no entry matches %q", prefix))
	case 1:
	default:
		fatal(fmt.Errorf("corpus: %q is ambiguous (%d matches)", prefix, len(matches)))
	}
	e, _ := st.Get(matches[0])
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

func cmdCorpusGC(args []string) {
	fs := newFlagSet("corpus gc")
	dir := fs.String("dir", "", "corpus directory")
	keep := fs.Int("keep", 0, "entries to keep (most-observed first)")
	_ = fs.Parse(args)
	if fs.NArg() != 0 || *keep <= 0 {
		corpusUsage()
	}
	st := openCorpusDir(*dir)
	removed, err := st.GC(*keep)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("removed %d entries; %d remain, hash %.12s\n", len(removed), st.Len(), st.Hash())
}
