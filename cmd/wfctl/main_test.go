package main

import (
	"strings"
	"testing"
)

// TestCheckStartFlags pins the flag-layer validation: the combinations
// only the CLI can see (explicit zero workers, -staleness without -async,
// strategy-bound surrogate flags) plus the fault-injection flags, whose
// deeper constraints (fleet ranges, locality vs cache) are deferred to the
// shared Options.Validate.
func TestCheckStartFlags(t *testing.T) {
	ok := startFlags{Workers: 1, Hosts: 1, Staleness: -1, Strategy: "deeptune"}
	cases := []struct {
		name    string
		mutate  func(*startFlags)
		wantErr string
	}{
		{"defaults", func(f *startFlags) {}, ""},
		{"workers zero", func(f *startFlags) { f.Workers = 0 }, "-workers"},
		{"hosts zero", func(f *startFlags) { f.Hosts = 0 }, "-hosts"},
		{"staleness without async", func(f *startFlags) { f.Staleness = 2 }, "-staleness"},
		{"staleness with async", func(f *startFlags) { f.Async = true; f.Staleness = 2; f.Workers = 4 }, ""},
		{"gp-refit off-strategy", func(f *startFlags) { f.GPRefit = true }, "-gp-refit"},
		{"gp-refit bayesian", func(f *startFlags) { f.GPRefit = true; f.Strategy = "bayesian" }, ""},
		{"gp-window off-strategy", func(f *startFlags) { f.GPWindow = 64; f.Strategy = "random" }, "-gp-window"},
		{"gp-window deeptune", func(f *startFlags) { f.GPWindow = 64 }, ""},
		{"faults valid", func(f *startFlags) { f.Faults = "down:1@300,up:1@900,retry:3/20/2" }, ""},
		{"faults injections only", func(f *startFlags) { f.Faults = "buildfail:7#1,bootfail:9" }, ""},
		{"faults malformed", func(f *startFlags) { f.Faults = "meteor:1@2" }, "-faults"},
		{"faults truncated", func(f *startFlags) { f.Faults = "down:1" }, "-faults"},
		{"dispatch static", func(f *startFlags) { f.Dispatch = "static" }, ""},
		{"dispatch locality", func(f *startFlags) { f.Dispatch = "locality" }, ""},
		{"dispatch unknown", func(f *startFlags) { f.Dispatch = "gravity" }, "-dispatch"},
	}
	for _, tc := range cases {
		f := ok
		tc.mutate(&f)
		err := checkStartFlags(nil, f)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}
