// Daemon-mode subcommands: wfctl as a client of a running wfd daemon.
//
//	wfctl submit -d wfd.sock -s random -seed 7 -l 200 job.yaml
//	wfctl jobs -d wfd.sock
//	wfctl status -d wfd.sock [j000001]
//	wfctl attach -d wfd.sock -from 0 j000001
//	wfctl report -d wfd.sock -wait j000001
//	wfctl cancel -d wfd.sock j000001
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"wayfinder/internal/wfd"
)

func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ExitOnError)
}

func cmdSubmit(args []string) {
	fs := newFlagSet("submit")
	addr := fs.String("d", "wfd.sock", "daemon address: unix-socket path or host:port")
	tenant := fs.String("tenant", "", "tenant name for fair-share scheduling and quotas")
	strategy := fs.String("s", "deeptune", "search strategy: random, grid, bayesian, deeptune, unicorn")
	seed := fs.Uint64("seed", 1, "session seed")
	iters := fs.Int("l", 0, "iteration budget override (daemon jobs must end up with one)")
	workers := fs.Int("workers", 0, "concurrent evaluation workers")
	async := fs.Bool("async", false, "use the event-driven asynchronous scheduler")
	staleness := fs.Int("staleness", 0, "async staleness bound")
	hosts := fs.Int("hosts", 0, "simulated host count")
	noCache := fs.Bool("no-cache", false, "disable the session's artifact store")
	gpWindow := fs.Int("gp-window", 0, "bound the learned surrogate to a sliding window of recent observations (min 8; 0 = unbounded; bayesian/deeptune only)")
	faults := fs.String("faults", "", "deterministic fault schedule in the fault DSL (part of the spec; a resumed job replays the same churn)")
	dispatch := fs.String("dispatch", "", "placement policy: static (default) or locality")
	useCorpus := fs.Bool("corpus", false, "deposit the job's outcome into the daemon's shared transfer corpus")
	warmStartK := fs.Int("warm-start-k", 0, "warm-start from the K nearest corpus neighbors (needs -corpus)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	job := loadJob(fs.Arg(0))
	spec := wfd.SpecFromJob(job)
	spec.Tenant = *tenant
	spec.Searcher = *strategy
	spec.Seed = *seed
	if *iters > 0 {
		spec.Iterations = *iters
	}
	spec.Workers = *workers
	spec.Async = *async
	spec.Staleness = *staleness
	spec.Hosts = *hosts
	spec.DisableCache = *noCache
	spec.SurrogateWindow = *gpWindow
	spec.FaultSchedule = *faults
	spec.Dispatch = *dispatch
	spec.Corpus = *useCorpus
	spec.WarmStartK = *warmStartK

	id, err := wfd.NewClient(*addr).Submit(context.Background(), spec)
	if err != nil {
		fatal(err)
	}
	fmt.Println(id)
}

func cmdJobs(args []string) {
	fs := newFlagSet("jobs")
	addr := fs.String("d", "wfd.sock", "daemon address")
	_ = fs.Parse(args)
	jobs, err := wfd.NewClient(*addr).Jobs(context.Background())
	if err != nil {
		fatal(err)
	}
	for _, j := range jobs {
		fmt.Printf("%s  %-8s  tenant=%-10s  %s/%s/%s  %d/%d obs  best=%g\n",
			j.ID, j.State, j.Tenant, j.OS, j.Searcher, j.Metric, j.Observed, j.Iterations, j.BestMetric)
	}
}

func cmdStatus(args []string) {
	fs := newFlagSet("status")
	addr := fs.String("d", "wfd.sock", "daemon address")
	_ = fs.Parse(args)
	c := wfd.NewClient(*addr)
	ctx := context.Background()
	if fs.NArg() == 1 {
		st, err := c.Job(ctx, fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s %s tenant=%s %s/%s/%s seed=%d\n", st.ID, st.State, st.Tenant, st.OS, st.Searcher, st.Metric, st.Seed)
		fmt.Printf("  observed %d/%d, crashes %d, events %d, journalable %v\n",
			st.Observed, st.Iterations, st.Crashes, st.Events, st.Journalable)
		if st.BestConfig != "" {
			fmt.Printf("  best %g @ %s\n", st.BestMetric, st.BestConfig)
		}
		if st.Err != "" {
			fmt.Printf("  error: %s\n", st.Err)
		}
		return
	}
	st, err := c.Status(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("jobs %d (queued %d running %d done %d canceled %d failed %d)\n",
		st.Jobs, st.Queued, st.Running, st.Done, st.Canceled, st.Failed)
	fmt.Printf("served %d observations in %d quanta; recovered %d (resumed %d); builds %d unique, %d duplicated\n",
		st.ServedTotal, st.Quanta, st.Recovered, st.Resumed, st.UniqueBuilds, st.DupBuilds)
	if st.CorpusHash != "" || st.CorpusEntries > 0 {
		fmt.Printf("corpus: %d entries, hash %.12s\n", st.CorpusEntries, st.CorpusHash)
	}
	for _, t := range st.Tenants {
		fmt.Printf("  tenant %-12s active=%d committed=%d served=%d service=%d compute=%.0fs\n",
			t.Name, t.Active, t.Committed, t.Served, t.Service, t.ComputeSec)
	}
}

func cmdAttach(args []string) {
	fs := newFlagSet("attach")
	addr := fs.String("d", "wfd.sock", "daemon address")
	from := fs.Int("from", 0, "replay the event stream from this sequence number")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	_, err := wfd.NewClient(*addr).Events(context.Background(), fs.Arg(0), *from, func(ev wfd.WireEvent) bool {
		switch ev.Type {
		case "eval":
			state := fmt.Sprintf("%g", ev.Metric)
			if ev.Crashed {
				state = "crash[" + ev.Stage + "]"
			}
			fmt.Printf("#%-6d eval  it=%-5d %s  %s\n", ev.Seq, ev.Iteration, state, ev.Config)
		case "best":
			fmt.Printf("#%-6d best  it=%-5d %g  %s\n", ev.Seq, ev.Iteration, ev.Metric, ev.Config)
		case "cache":
			fmt.Printf("#%-6d cache it=%-5d %s\n", ev.Seq, ev.Iteration, ev.Source)
		case "round":
			fmt.Printf("#%-6d round %d (%d evals) t=%.1fs\n", ev.Seq, ev.Round, ev.Size, ev.WallSec)
		case "progress":
			fmt.Printf("#%-6d %d/%d observed, best=%g, t=%.1fs, util=%.2f\n",
				ev.Seq, ev.Observed, ev.Iterations, ev.BestMetric, ev.ElapsedSec, ev.Utilization)
		case "fault":
			fmt.Printf("#%-6d fault %s it=%-5d attempt=%d worker=%d t=%.1fs\n",
				ev.Seq, ev.Kind, ev.Iteration, ev.Attempt, ev.Worker, ev.AtSec)
		case "retry":
			fmt.Printf("#%-6d retry it=%-5d attempt=%d not-before=%.1fs\n",
				ev.Seq, ev.Iteration, ev.Attempt, ev.AtSec)
		case "host":
			state := "down"
			if ev.Up {
				state = "up"
			}
			fmt.Printf("#%-6d host  %d %s t=%.1fs\n", ev.Seq, ev.Host, state, ev.AtSec)
		case "corpus":
			switch ev.Kind {
			case "warmstart":
				fmt.Printf("#%-6d corpus warmstart: %d seeds, dtm=%v, hash=%.12s\n", ev.Seq, ev.Seeds, ev.DTM, ev.Hash)
			case "deposit":
				fmt.Printf("#%-6d corpus deposit: %.12s (corpus hash %.12s)\n", ev.Seq, ev.Digest, ev.Hash)
			}
		case "done":
			fmt.Printf("#%-6d done: %d observed, best=%g @ %s\n", ev.Seq, ev.Observed, ev.BestMetric, ev.BestConfig)
		}
		return true
	})
	if err != nil {
		fatal(err)
	}
}

func cmdReport(args []string) {
	fs := newFlagSet("report")
	addr := fs.String("d", "wfd.sock", "daemon address")
	wait := fs.Bool("wait", false, "block until the job completes")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	data, err := wfd.NewClient(*addr).Report(context.Background(), fs.Arg(0), *wait)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

func cmdCancel(args []string) {
	fs := newFlagSet("cancel")
	addr := fs.String("d", "wfd.sock", "daemon address")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	if err := wfd.NewClient(*addr).Cancel(context.Background(), fs.Arg(0)); err != nil {
		fatal(err)
	}
	fmt.Println("canceling", fs.Arg(0))
}
