// Command wfctl creates and runs Wayfinder specialization jobs from YAML
// job files, mirroring the workflow of the paper's artifact
// ("wfctl create ./job.yaml && wfctl start ... -s random $ID").
//
// Usage:
//
//	wfctl create job.yaml                   # validate and summarize a job
//	wfctl start -s deeptune job.yaml        # run the search session
//	wfctl start -s random -workers 8 job.yaml
//	wfctl start -s random -workers 8 -async job.yaml
//	wfctl start -s random -workers 8 -async -staleness 2 -straggler 4 job.yaml
//	wfctl start -s random -workers 8 -hosts 4 job.yaml
//	wfctl start -s random -workers 8 -hosts 4 -faults "down:1@300,up:1@900,retry:3/20/2" job.yaml
//	wfctl start -s random -workers 8 -hosts 4 -dispatch locality job.yaml
//	wfctl start -s random -workers 8 -no-cache job.yaml
//	wfctl start -s bayesian -gp-refit job.yaml
//	wfctl start -s bayesian -gp-window 512 job.yaml
//	wfctl start -s random -json job.yaml
//	wfctl start -s random -progress job.yaml    # live one-line status
//	wfctl start -s random -timeout 30s job.yaml # wall-clock bound, partial report
//
// The target OS named in the job file selects the simulated model
// ("linux", "unikraft", "linux-riscv"); the app field selects the
// workload; metric selects performance/memory/score.
//
// start drives the Session API: the session streams typed events (which
// -progress renders live) and honors context cancellation (which -timeout
// wires to a real-time deadline — the session's partial report is printed
// when it fires).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"maps"
	"os"
	"slices"

	"wayfinder/internal/apps"
	"wayfinder/internal/configspace"
	"wayfinder/internal/core"
	"wayfinder/internal/deeptune"
	"wayfinder/internal/fault"
	"wayfinder/internal/search"
	"wayfinder/internal/simos"
	"wayfinder/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "create":
		cmdCreate(os.Args[2:])
	case "start":
		cmdStart(os.Args[2:])
	case "submit":
		cmdSubmit(os.Args[2:])
	case "jobs":
		cmdJobs(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	case "attach":
		cmdAttach(os.Args[2:])
	case "report":
		cmdReport(os.Args[2:])
	case "cancel":
		cmdCancel(os.Args[2:])
	case "corpus":
		cmdCorpus(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: wfctl <command> [flags] ...
  local:  create job.yaml | start [flags] job.yaml
  daemon: submit -d addr [flags] job.yaml | jobs | status [id] |
          attach id | report [-wait] id | cancel id   (all take -d addr)
  corpus: corpus ls|show|gc -dir <corpus-dir> ...`)
	os.Exit(2)
}

func loadJob(path string) *configspace.Job {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	job, err := configspace.ParseJobYAML(string(data))
	if err != nil {
		fatal(err)
	}
	return job
}

func cmdCreate(args []string) {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	job := loadJob(fs.Arg(0))
	census := job.Space.Census()
	fmt.Printf("job %q validated\n", job.Name)
	fmt.Printf("  os=%s app=%s metric=%s maximize=%v\n", job.OS, job.App, job.Metric, job.Maximize)
	fmt.Printf("  parameters: %d (compile=%d boot=%d runtime=%d)\n",
		job.Space.Len(),
		census.CompileBool+census.CompileTristate+census.CompileString+census.CompileHex+census.CompileInt,
		census.Boot, census.Runtime)
	fmt.Printf("  log10 search-space size: %.1f\n", job.Space.LogCardinality())
}

func cmdStart(args []string) {
	fs := flag.NewFlagSet("start", flag.ExitOnError)
	strategy := fs.String("s", "deeptune", "search strategy: random, grid, bayesian, deeptune, unicorn")
	iters := fs.Int("l", 0, "iteration budget override")
	seed := fs.Uint64("seed", 1, "session seed")
	workers := fs.Int("workers", 1, "concurrent evaluation workers")
	async := fs.Bool("async", false, "use the event-driven asynchronous scheduler (no round barrier)")
	staleness := fs.Int("staleness", -1, "async staleness bound: max unobserved in-flight evaluations a proposal may lag behind (0 = synchronous rounds; needs -async; omit for unbounded asynchrony)")
	straggler := fs.Float64("straggler", 1, "slow the last worker by this factor (models a straggler machine)")
	hosts := fs.Int("hosts", 1, "split the workers across this many simulated hosts (each with its own artifact-store partition)")
	noCache := fs.Bool("no-cache", false, "disable the shared content-addressed artifact store (per-worker image reuse only)")
	gpRefit := fs.Bool("gp-refit", false, "force the bayesian surrogate back to full O(n³) refits per observation (the pre-incremental baseline, for decision-cost comparisons)")
	gpWindow := fs.Int("gp-window", 0, "bound the learned surrogate to a sliding window of this many recent observations (min 8; 0 = unbounded); keeps per-decision cost flat on long sessions (bayesian/deeptune only)")
	faults := fs.String("faults", "", "deterministic fault schedule in the fault DSL, e.g. \"down:1@300,up:1@900,preempt:3@120,buildfail:7#1,retry:3/20/2\"")
	dispatch := fs.String("dispatch", "", "placement policy: static (default) or locality (prefer hosts that already hold the configuration's image)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	progress := fs.Bool("progress", false, "render a live one-line status from the session event stream")
	timeout := fs.Duration("timeout", 0, "real-time limit for the session; when it fires the partial report is printed")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	if err := checkStartFlags(fs, startFlags{
		Workers: *workers, Async: *async, Staleness: *staleness, Hosts: *hosts,
		GPRefit: *gpRefit, GPWindow: *gpWindow, Strategy: *strategy,
		Faults: *faults, Dispatch: *dispatch,
	}); err != nil {
		fatal(err)
	}
	job := loadJob(fs.Arg(0))

	// Select the OS model. Jobs with their own parameter list search that
	// space against the named profile's hidden behaviour where names
	// overlap; jobs without parameters use the profile's full space.
	var model *simos.Model
	switch job.OS {
	case "linux":
		model = simos.NewLinux(simos.DefaultLinuxOptions())
	case "unikraft":
		model = simos.NewUnikraft(1)
	case "linux-riscv", "riscv":
		model = simos.NewRiscv(simos.DefaultRiscvOptions())
	default:
		fatal(fmt.Errorf("unknown os %q (linux|unikraft|linux-riscv)", job.OS))
	}
	for _, class := range slices.Sorted(maps.Keys(job.Favor)) {
		cl, err := configspace.ParseClass(class)
		if err != nil {
			fatal(err)
		}
		model.Space.Favor(cl, job.Favor[class])
	}
	for _, name := range slices.Sorted(maps.Keys(job.Fixed)) {
		raw := job.Fixed[name]
		p, _ := model.Space.Lookup(name)
		if p == nil {
			fatal(fmt.Errorf("fixed parameter %q not in the %s space", name, job.OS))
		}
		v, err := p.ParseValue(raw)
		if err != nil {
			fatal(err)
		}
		if err := model.Space.Fix(name, v); err != nil {
			fatal(err)
		}
	}

	appName := job.App
	if appName == "" {
		appName = "nginx"
	}
	app, err := apps.ByName(appName)
	if err != nil {
		fatal(err)
	}

	var metric core.Metric
	switch job.Metric {
	case "throughput", "latency", "performance", "":
		metric = &core.PerfMetric{App: app}
	case "memory":
		metric = core.MemoryMetric{}
	case "score":
		metric = &core.ScoreMetric{}
	default:
		fatal(fmt.Errorf("unknown metric %q", job.Metric))
	}

	var s search.Searcher
	switch *strategy {
	case "random":
		s = search.NewRandom(model.Space, *seed)
	case "grid":
		s = search.NewGrid(model.Space)
	case "bayesian":
		b := search.NewBayesian(model.Space, metric.Maximize(), *seed)
		b.SetSurrogateRefit(*gpRefit)
		s = b
	case "deeptune":
		cfg := deeptune.DefaultConfig()
		cfg.Seed = *seed
		s = search.NewDeepTune(model.Space, metric.Maximize(), cfg)
	case "unicorn":
		s = search.NewUnicorn(model.Space, metric.Maximize(), *seed)
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	opts := core.Options{
		Iterations:    job.Iterations,
		TimeBudgetSec: job.TimeBudgetSec,
		Seed:          *seed,
		Workers:       *workers,
		Hosts:         *hosts,
		DisableCache:  *noCache,
	}
	opts.SurrogateWindow = *gpWindow
	opts.Dispatch = *dispatch
	if sched, err := fault.Parse(*faults); err != nil {
		fatal(err)
	} else {
		opts.Faults = sched
	}
	if *async {
		opts.Async = true
		opts.Staleness = *staleness
	}
	if *workers <= 1 && (*async || *straggler > 1) {
		fmt.Fprintln(os.Stderr, "wfctl: -async/-staleness/-straggler need -workers > 1; running sequentially")
	}
	if *straggler > 1 && *workers > 1 {
		opts.WorkerSpeedFactors = core.StragglerFleet(*workers, *straggler)
	}
	if *iters > 0 {
		opts.Iterations = *iters
	}
	if opts.Iterations == 0 && opts.TimeBudgetSec == 0 { //wfvet:ignore floateq 0 is the unset-flag sentinel, never a computed value
		opts.Iterations = 100
	}
	// The centralized option validation every entry point shares; flag
	// combinations that escaped the flag-level checks (hosts > workers,
	// hosts with -no-cache, ...) die here with the same message a library
	// caller gets.
	if err := opts.Validate(); err != nil {
		fatal(err)
	}
	var clock vm.Clock
	eng := core.NewEngine(model, app, metric, s, &clock, *seed)
	session, err := eng.NewSession(opts)
	if err != nil {
		fatal(err)
	}
	if *progress {
		session.AddObserver(renderProgress)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	report, err := session.Run(ctx)
	if *progress {
		fmt.Fprintln(os.Stderr) // terminate the live status line
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "wfctl: -timeout %s elapsed after %d observations; reporting the partial session\n",
			*timeout, len(report.History))
	} else if err != nil {
		fatal(err)
	}
	if *asJSON {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Printf("session complete: %d iterations, %.1f virtual minutes, %d crashes (%.1f%%)\n",
		len(report.History), report.ElapsedSec/60, report.Crashes, 100*report.CrashRate())
	if report.Workers > 1 {
		scheduler := "round-barrier"
		if report.Async {
			scheduler = fmt.Sprintf("async, staleness %d", report.Staleness)
		}
		fleet := ""
		if report.Hosts > 1 {
			fleet = fmt.Sprintf(" on %d hosts", report.Hosts)
		}
		fmt.Printf("workers: %d%s (%s; compute %.1f virtual minutes, idle %.1f, utilization %.0f%%)\n",
			report.Workers, fleet, scheduler, report.ComputeSec/60, report.IdleSec/60, 100*report.Utilization)
	}
	// Hits+misses > 0 means the store was consulted; with -no-cache both
	// stay 0 and no cache statistics are claimed.
	if report.CacheHits+report.CacheMisses > 0 {
		fmt.Printf("artifact cache: %d builds, %d hits (%d cross-host), %d misses, %d builds saved\n",
			report.Builds, report.CacheHits, report.CacheRemoteHits, report.CacheMisses, report.BuildsSaved)
	}
	if report.Best != nil {
		fmt.Printf("best %s: %.2f %s (found after %.0f virtual seconds)\n",
			report.Metric, report.Best.Metric, report.Unit, report.BestTimeSec)
		fmt.Printf("configuration: %s\n", report.Best.ConfigString)
	} else {
		fmt.Println("no viable configuration found")
	}
}

// startFlags carries the flag values checkStartFlags inspects.
type startFlags struct {
	Workers   int
	Async     bool
	Staleness int
	Hosts     int
	GPRefit   bool
	GPWindow  int
	Strategy  string
	Faults    string
	Dispatch  string
}

// checkStartFlags rejects the flag combinations only the flag layer can
// see: whether -staleness was explicitly passed, which strategy
// -gp-refit/-gp-window ride on, explicit non-positive -workers/-hosts
// (the library treats zero as "default", so only the CLI can tell
// `-workers 0` from the flag being omitted), an unparseable -faults DSL,
// and an unknown -dispatch name. Everything else expressible over
// core.Options — hosts > workers, staleness vs async, -no-cache vs -hosts,
// window < 8, fault events out of fleet range, locality without a cache —
// is validated centrally by Options.Validate, shared with wfbench and
// library callers. fs may be nil (table tests) — then -staleness is
// treated as passed whenever it differs from its -1 default.
func checkStartFlags(fs *flag.FlagSet, f startFlags) error {
	stalenessSet := f.Staleness != -1
	if fs != nil {
		stalenessSet = false
		fs.Visit(func(fl *flag.Flag) {
			if fl.Name == "staleness" {
				stalenessSet = true
			}
		})
	}
	if f.GPRefit && f.Strategy != "bayesian" {
		return fmt.Errorf("-gp-refit only applies to the bayesian strategy's GP surrogate (got -s %s)", f.Strategy)
	}
	if f.GPWindow != 0 && f.Strategy != "bayesian" && f.Strategy != "deeptune" {
		return fmt.Errorf("-gp-window only applies to the learned strategies' surrogates (bayesian, deeptune; got -s %s)", f.Strategy)
	}
	if stalenessSet && !f.Async {
		return fmt.Errorf("-staleness only applies to the async scheduler; add -async")
	}
	if stalenessSet && f.Staleness < 0 {
		return fmt.Errorf("-staleness must be ≥ 0 (omit the flag for unbounded asynchrony)")
	}
	if f.Workers < 1 {
		return fmt.Errorf("-workers must be ≥ 1 (got %d)", f.Workers)
	}
	if f.Hosts < 1 {
		return fmt.Errorf("-hosts must be ≥ 1 (got %d)", f.Hosts)
	}
	if _, err := fault.Parse(f.Faults); err != nil {
		return fmt.Errorf("-faults: %v", err)
	}
	switch f.Dispatch {
	case "", core.DispatchStatic, core.DispatchLocality:
	default:
		return fmt.Errorf("-dispatch must be %s or %s (got %q)", core.DispatchStatic, core.DispatchLocality, f.Dispatch)
	}
	return nil
}

// renderProgress renders the live one-line session status from the typed
// event stream: observation position, incumbent best, utilization, and
// cache effectiveness, updated in place on stderr. Fault-injection events
// scroll past as their own lines; the status line redraws beneath them.
func renderProgress(ev core.Event) {
	switch e := ev.(type) {
	case core.HostStateChanged:
		state := "down"
		if e.Up {
			state = "up"
		}
		fmt.Fprintf(os.Stderr, "\r\033[Khost %d %s at t=%.0fs\n", e.Host, state, e.AtSec)
		return
	case core.FaultInjected:
		fmt.Fprintf(os.Stderr, "\r\033[Kfault %s hit iter %d (attempt %d, worker %d) at t=%.0fs\n",
			e.Kind, e.Iter, e.Attempt, e.Worker, e.AtSec)
		return
	case core.RetryScheduled:
		fmt.Fprintf(os.Stderr, "\r\033[Kretry iter %d (attempt %d) not before t=%.0fs\n",
			e.Iter, e.Attempt, e.NotBeforeSec)
		return
	}
	p, ok := ev.(core.Progress)
	if !ok {
		return
	}
	total := "?"
	if p.Iterations > 0 {
		total = fmt.Sprintf("%d", p.Iterations)
	}
	best := "best -"
	if p.Best != nil {
		best = fmt.Sprintf("best %.2f", p.Best.Metric)
	}
	fmt.Fprintf(os.Stderr, "\r\033[Kiter %d/%s  %s  crashes %d  util %.0f%%  cache %d hits / %d builds saved",
		p.Observed, total, best, p.Crashes, 100*p.Utilization, p.CacheHits, p.BuildsSaved)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfctl: %v\n", err)
	os.Exit(1)
}
