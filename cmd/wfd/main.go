// Command wfd runs the Wayfinder daemon: a long-lived, multi-tenant
// service multiplexing many concurrent tuning sessions over one process.
// Clients (wfctl, the serve experiment load generator, anything speaking
// HTTP+JSON) submit declarative job specs, attach to live event streams,
// and fetch canonical final reports.
//
// Usage:
//
//	wfd -listen /run/wfd.sock -state /var/lib/wfd
//	wfd -listen 127.0.0.1:7077 -state ./state -quantum 8 -journal-every 64
//	wfd -listen ./wfd.sock -tenant-budget 5000
//
// -listen takes "host:port" for TCP or a filesystem path for a unix
// socket. With -state set, every job is journaled (spec at admission,
// session snapshots periodically, the canonical report at completion) and
// a restarted daemon — even after kill -9 — resumes all in-flight jobs
// from their snapshots and completes them byte-identically to an
// uninterrupted run. SIGINT/SIGTERM shut down gracefully: the scheduler
// drains at quantum boundaries and every active job is snapshotted.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"wayfinder/internal/wfd"
)

func main() {
	fs := flag.NewFlagSet("wfd", flag.ExitOnError)
	listen := fs.String("listen", "wfd.sock", "listen address: host:port (TCP) or a unix-socket path")
	state := fs.String("state", "", "journal directory (empty = in-memory only, no crash recovery)")
	corpusDir := fs.String("corpus", "", "shared transfer-corpus directory (empty = corpus jobs rejected)")
	quantum := fs.Int("quantum", 8, "observations per scheduling quantum")
	journalEvery := fs.Int("journal-every", 64, "snapshot an active job every N observations")
	steppers := fs.Int("steppers", runtime.GOMAXPROCS(0), "stepping goroutine pool size")
	maxActive := fs.Int("max-active", 4096, "daemon-wide active-job cap")
	tenantMax := fs.Int("tenant-max-active", 1024, "per-tenant active-job cap")
	tenantBudget := fs.Int("tenant-budget", 0, "per-tenant total observation budget (0 = unlimited)")
	quiet := fs.Bool("quiet", false, "suppress the operational log")
	_ = fs.Parse(os.Args[1:])
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: wfd [flags]")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	d, err := wfd.New(wfd.Config{
		StateDir:        *state,
		CorpusDir:       *corpusDir,
		Quantum:         *quantum,
		JournalEvery:    *journalEvery,
		Steppers:        *steppers,
		MaxActiveJobs:   *maxActive,
		TenantMaxActive: *tenantMax,
		TenantBudget:    *tenantBudget,
		Logf:            logf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := wfd.Listen(*listen)
	if err != nil {
		logger.Fatal(err)
	}
	srv := &http.Server{Handler: wfd.NewHandler(d)}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logf("wfd: %v: shutting down", s)
		// Close the listener first (no new jobs), then drain the scheduler
		// and journal every active job so a future daemon resumes them.
		srv.Close()
	}()

	logf("wfd: serving on %s (state=%q quantum=%d steppers=%d)", *listen, *state, *quantum, *steppers)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		logger.Fatal(err)
	}
	d.Shutdown()
	logf("wfd: shut down cleanly")
}
