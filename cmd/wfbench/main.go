// Command wfbench reproduces the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	wfbench -exp fig6                 # one experiment at quick scale
//	wfbench -exp all -scale paper     # the full reproduction
//	wfbench -exp table2 -json         # machine-readable output
//
//	wfbench -exp scaling -workers 16  # worker-pool scaling study
//	wfbench -exp straggler -straggler 8
//	wfbench -exp cachehit -hosts 4    # shared artifact store vs per-worker caches
//	wfbench -exp fleet                # multi-host topology transfer costs
//	wfbench -exp fleet -dispatch locality
//	wfbench -exp elasticity           # host-churn outage ladder, retry-elsewhere
//	wfbench -exp elasticity -faults "down:1@600,up:1@1800,retry:3/20/2"
//	wfbench -exp locality             # locality dispatch vs static placement
//	wfbench -exp searcherscale -json  # incremental-surrogate decision-cost snapshot
//	wfbench -exp searcherscale -obs 512
//	wfbench -exp searcherscale-window -gp-window 512  # flat-cost sliding-window study
//	wfbench -exp serve                # wfd daemon load: many tenants, many sessions
//	wfbench -exp transferscale        # tuning memory: obs-to-target vs corpus size
//
// Experiment IDs: fig1, table1, fig2, fig5, fig6, table2, fig7, fig8,
// table3, fig9, fig10, fig11, table4, scaling, straggler, cachehit,
// fleet, elasticity, locality, searcherscale, searcherscale-window,
// serve, transferscale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wayfinder/internal/core"
	"wayfinder/internal/experiments"
	"wayfinder/internal/fault"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID or 'all'")
	scaleName := flag.String("scale", "quick", "experiment scale: quick or paper")
	workers := flag.Int("workers", 0, "override the scaling/straggler/cachehit/fleet experiments' worker-pool size")
	straggler := flag.Float64("straggler", 0, "override the straggler experiment's slowdown factor")
	hosts := flag.Int("hosts", 0, "override the cachehit experiment's multi-host fleet size")
	obs := flag.Int("obs", 0, "override the searcherscale experiment's surrogate observation count")
	gpWindow := flag.Int("gp-window", 0, "override the searcherscale-window experiment's sliding-window bound (min 8)")
	faults := flag.String("faults", "", "replace the elasticity experiment's outage ladder with this fault-DSL schedule")
	dispatch := flag.String("dispatch", "", "override the fleet experiment's placement policy: static or locality")
	asJSON := flag.Bool("json", false, "emit JSON instead of rendered tables")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "wfbench: unknown scale %q (quick|paper)\n", *scaleName)
		os.Exit(2)
	}
	if *workers > 0 {
		scale.Workers = *workers
	}
	if *straggler > 0 {
		scale.Straggler = *straggler
	}
	if *hosts > 0 {
		scale.Hosts = *hosts
	}
	if *obs > 0 {
		scale.SurrogateObs = *obs
		scale.SurrogateStream = *obs
	}
	if *gpWindow > 0 {
		scale.SurrogateWindow = *gpWindow
	}
	scale.FaultSchedule = *faults
	scale.Dispatch = *dispatch
	// The centralized option validation the library and wfctl share:
	// override combinations the experiments would otherwise clamp or
	// misrun (-hosts beyond -workers, negative counts, fault events out of
	// fleet range, an unknown dispatch policy) die here.
	sched, err := fault.Parse(scale.FaultSchedule)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfbench: -faults: %v\n", err)
		os.Exit(2)
	}
	probe := core.Options{Iterations: 1, Workers: scale.Workers, Hosts: scale.Hosts,
		SurrogateWindow: scale.SurrogateWindow, Faults: sched, Dispatch: scale.Dispatch}
	if scale.Straggler > 1 && scale.Workers > 1 {
		probe.WorkerSpeedFactors = core.StragglerFleet(scale.Workers, scale.Straggler)
	}
	if err := probe.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(data))
			continue
		}
		fmt.Print(res.Render())
		fmt.Printf("(%s completed in %s)\n%s\n", id, time.Since(start).Round(time.Millisecond),
			strings.Repeat("=", 72))
	}
}
