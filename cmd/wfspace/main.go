// Command wfspace derives and inspects OS configuration spaces.
//
// Usage:
//
//	wfspace -census                 # Table 1-style census of Linux 6.0
//	wfspace -probe                  # run the §3.4 probing heuristic
//	wfspace -probe -job out.yaml    # write the probed space as a job file
//	wfspace -versions               # Figure 1 option counts per release
package main

import (
	"flag"
	"fmt"
	"os"

	"wayfinder/internal/configspace"
	"wayfinder/internal/kconfig"
	"wayfinder/internal/simos"
	"wayfinder/internal/vm"
)

func main() {
	census := flag.Bool("census", false, "print the Linux 6.0 option census (Table 1)")
	probe := flag.Bool("probe", false, "boot the simulated kernel and probe its runtime space (§3.4)")
	jobOut := flag.String("job", "", "write the probed space as a YAML job file")
	versions := flag.Bool("versions", false, "print compile-time option counts per Linux release (Figure 1)")
	flag.Parse()

	switch {
	case *versions:
		fmt.Printf("%-10s %8s %8s %8s %6s %6s %8s\n",
			"version", "bool", "tristate", "string", "hex", "int", "total")
		for _, vc := range kconfig.LinuxVersions {
			c := vc.Census
			fmt.Printf("%-10s %8d %8d %8d %6d %6d %8d\n",
				vc.Version, c.Bool, c.Tristate, c.String, c.Hex, c.Int, c.Total())
		}
	case *census:
		src, err := kconfig.GenerateVersion("v6.0", 1)
		if err != nil {
			fatal(err)
		}
		tree, err := kconfig.Parse(src)
		if err != nil {
			fatal(err)
		}
		c := tree.Census()
		osCensus := simos.NewLinuxCensus(1).Space.Census()
		fmt.Println("Configuration space for Linux 6.0:")
		fmt.Printf("  compile-time: bool=%d tristate=%d string=%d hex=%d int=%d (total %d)\n",
			c.Bool, c.Tristate, c.String, c.Hex, c.Int, c.Total())
		fmt.Printf("  boot-time options: %d\n", osCensus.Boot)
		fmt.Printf("  runtime options:   %d\n", osCensus.Runtime)
	case *probe:
		model := simos.NewLinux(simos.DefaultLinuxOptions())
		machine := vm.New(model, model.Space.Default())
		if err := machine.Boot(); err != nil {
			fatal(err)
		}
		var clock vm.Clock
		space, err := machine.ProbeSpace("linux-probed", vm.DefaultProbeOptions(), &clock)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("probed %d runtime parameters in %.1f virtual seconds\n",
			space.Len(), clock.Now())
		census := space.Census()
		fmt.Printf("  inferred boolean: %d, integer: %d\n",
			census.Runtime-intCount(space), intCount(space))
		if *jobOut != "" {
			job := &configspace.Job{
				Name: "linux-probed", OS: "linux", Metric: "throughput",
				Maximize: true, Space: space,
			}
			if err := os.WriteFile(*jobOut, []byte(configspace.WriteJobYAML(job)), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *jobOut)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func intCount(space *configspace.Space) int {
	n := 0
	for _, p := range space.Params() {
		if p.Type == configspace.Int {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfspace: %v\n", err)
	os.Exit(1)
}
