module wayfinder

go 1.24
